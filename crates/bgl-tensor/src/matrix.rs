//! Row-major dense `f32` matrix and its kernels.
//!
//! ## Blocked matmul geometry and the determinism contract
//!
//! All three matmul variants share one structure: the *output rows* are the
//! unit of work. A row panel is computed by a row kernel that accumulates
//! every output element in strictly ascending-`k` order into a single `f32`
//! accumulator, with the `k` loop unrolled by [`KU`] — the unrolled body
//! chains its adds left-to-right, which IEEE-754 evaluates in exactly the
//! same order as [`KU`] separate passes, so unrolling never changes a bit.
//! The parallel entry points ([`Matrix::matmul`] & co.) split the rows into
//! panels claimed by the `crate::pool` workers; since each output element
//! is computed wholly by one thread running the identical row kernel, the
//! parallel result is bitwise-identical to the serial one
//! ([`Matrix::matmul_serial`] & co.) by construction — the property the
//! executor's `run` vs `run_serial` differential test rests on.
//!
//! Small products (see [`PAR_MIN_FLOPS`]) skip the pool: the work would not
//! amortize a queue round-trip, and the result is identical either way.

use crate::pool;

/// k-loop unroll factor of every row kernel.
const KU: usize = 4;

/// Output-row register-block height: rows computed together so each
/// streamed b-row load is shared `RU` ways.
const RU: usize = 4;

/// Minimum `2·m·k·n` FLOP count before a matmul fans out to the pool.
const PAR_MIN_FLOPS: usize = 1 << 16;

/// Raw pointer wrapper that lets disjoint row panels of one output buffer
/// be written from pool threads. Soundness: panel ranges never overlap and
/// `parallel_for` joins every worker before the buffer is read.
#[derive(Clone, Copy)]
struct OutPtr(*mut f32);
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

impl OutPtr {
    /// Pointer `off` elements past the base. A method (not field access) so
    /// closures capture the `Sync` wrapper, not the bare `*mut f32`.
    #[inline]
    fn at(self, off: usize) -> *mut f32 {
        unsafe { self.0.add(off) }
    }
}

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/buffer mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// The raw row-major buffer.
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// The raw row-major buffer, mutably.
    pub fn raw_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self @ other` — (m,k) x (k,n) -> (m,n). Blocked row-panel kernel,
    /// fanned out across the kernel pool for large products; bitwise-equal
    /// to [`Matrix::matmul_serial`] (see the module docs).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        self.mm_dispatch(other, other.cols, mm_rows)
    }

    /// Serial path of [`Matrix::matmul`], kept for the determinism
    /// contract: one thread, same row kernel, same bits.
    pub fn matmul_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        mm_rows(self, other, 0, self.rows, &mut out.data);
        out
    }

    /// `selfᵀ @ other` — (k,m)ᵀ x (k,n) -> (m,n), used for weight
    /// gradients. Same row-blocked kernel discipline as [`Matrix::matmul`];
    /// the A operand is gathered column-wise at stride m (only RU·KU
    /// scalars per register block, so the strided reads never dominate).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        self.mm_dispatch_shape(other, self.cols, other.cols, self.rows, mm_tn_rows)
    }

    /// Serial path of [`Matrix::matmul_tn`].
    pub fn matmul_tn_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        mm_tn_rows(self, other, 0, self.cols, &mut out.data);
        out
    }

    /// `self @ otherᵀ` — (m,k) x (n,k)ᵀ -> (m,n), used for input
    /// gradients. Transposes `other` once (k·n copy, negligible next to
    /// the m·k·n product) so the shared axpy row kernel runs over
    /// contiguous rows; each output element still accumulates its dot in
    /// strictly increasing-p order, so this is bitwise-equal to the
    /// per-element dot form.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let bt = other.transposed();
        self.mm_dispatch(&bt, bt.cols, mm_rows)
    }

    /// Serial path of [`Matrix::matmul_nt`].
    pub fn matmul_nt_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let bt = other.transposed();
        let mut out = Matrix::zeros(self.rows, bt.cols);
        mm_rows(self, &bt, 0, self.rows, &mut out.data);
        out
    }

    /// Shared dispatch for the (m, ·) -> (m, n) variants: output rows ==
    /// `self.rows`.
    fn mm_dispatch(
        &self,
        other: &Matrix,
        n: usize,
        kernel: fn(&Matrix, &Matrix, usize, usize, &mut [f32]),
    ) -> Matrix {
        self.mm_dispatch_shape(other, self.rows, n, self.cols, kernel)
    }

    /// Run `kernel` over the output rows, in row panels on the pool when
    /// the product is big enough to amortize it.
    fn mm_dispatch_shape(
        &self,
        other: &Matrix,
        m: usize,
        n: usize,
        k: usize,
        kernel: fn(&Matrix, &Matrix, usize, usize, &mut [f32]),
    ) -> Matrix {
        let mut out = Matrix::zeros(m, n);
        let pool = pool::global();
        let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
        if pool.threads() == 1 || flops < PAR_MIN_FLOPS || m < 2 {
            kernel(self, other, 0, m, &mut out.data);
            return out;
        }
        // Panel size: enough panels to balance the pool, but never so small
        // that queue traffic dominates.
        let panel = m.div_ceil(pool.threads() * 4).max(4);
        let panels = m.div_ceil(panel);
        let base = OutPtr(out.data.as_mut_ptr());
        pool.parallel_for(panels, &|c| {
            let i0 = c * panel;
            let i1 = (i0 + panel).min(m);
            // SAFETY: panels are disjoint row ranges of `out`, and
            // parallel_for joins every worker before `out` is returned.
            let out_rows = unsafe {
                std::slice::from_raw_parts_mut(base.at(i0 * n), (i1 - i0) * n)
            };
            kernel(self, other, i0, i1, out_rows);
        });
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // 32x32 tiles keep both the read rows and the strided write
        // columns inside L1 while a tile is hot; the element-at-a-time
        // form thrashed on matrices past cache size.
        const T: usize = 32;
        let (r, c) = (self.rows, self.cols);
        for bi in (0..r).step_by(T) {
            for bj in (0..c).step_by(T) {
                for i in bi..(bi + T).min(r) {
                    let row = self.row(i);
                    for (j, &v) in row.iter().enumerate().take((bj + T).min(c)).skip(bj) {
                        out.data[j * r + i] = v;
                    }
                }
            }
        }
        out
    }

    /// Elementwise in-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Broadcast-add a row vector to every row (bias add).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for i in 0..self.rows {
            for (x, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Multiply all elements by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in self.data.iter_mut() {
            *x *= s;
        }
    }

    /// Column sums — the bias gradient of a bias add.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(i)) {
                *s += x;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Map every element through `f`, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise product (Hadamard), returning a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// L2-normalize each row in place (used by GraphSAGE).
    pub fn l2_normalize_rows(&mut self) {
        for i in 0..self.rows {
            let row = self.row_mut(i);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for x in row.iter_mut() {
                    *x /= norm;
                }
            }
        }
    }

    /// Concatenate two matrices horizontally: (m,a) ++ (m,b) -> (m,a+b).
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Split a horizontally concatenated matrix back into (m,a) and (m,b).
    pub fn hsplit(&self, a: usize) -> (Matrix, Matrix) {
        assert!(a <= self.cols);
        let b = self.cols - a;
        let mut left = Matrix::zeros(self.rows, a);
        let mut right = Matrix::zeros(self.rows, b);
        for i in 0..self.rows {
            left.row_mut(i).copy_from_slice(&self.row(i)[..a]);
            right.row_mut(i).copy_from_slice(&self.row(i)[a..]);
        }
        (left, right)
    }
}

/// Compute an `R × n` block of output rows: `block[r][j] += Σ_p av_at(r, p)
/// · b[p][j]`, ascending-k axpy. Each output element accumulates into one
/// scalar in strictly increasing-p order — the KU-unrolled body chains its
/// adds left-to-right, so R and KU are tuning knobs, not numerics knobs:
/// every (R, KU) produces the same bits as the plain one-row, one-p loop.
/// `R` output rows share each streamed b-row load, which is where the
/// speedup over the naive kernel comes from.
#[inline(always)]
fn mm_block<const R: usize, F: Fn(usize, usize) -> f32>(
    av_at: F,
    b: &Matrix,
    k: usize,
    n: usize,
    block: &mut [f32],
) {
    debug_assert_eq!(block.len(), R * n);
    let mut p = 0;
    while p + KU <= k {
        let av: [[f32; KU]; R] = std::array::from_fn(|r| std::array::from_fn(|u| av_at(r, p + u)));
        let brows: [&[f32]; KU] = std::array::from_fn(|u| b.row(p + u));
        for j in 0..n {
            let mut acc: [f32; R] = std::array::from_fn(|r| block[r * n + j]);
            for u in 0..KU {
                let bv = brows[u][j];
                for r in 0..R {
                    acc[r] += av[r][u] * bv;
                }
            }
            for r in 0..R {
                block[r * n + j] = acc[r];
            }
        }
        p += KU;
    }
    while p < k {
        let av: [f32; R] = std::array::from_fn(|r| av_at(r, p));
        let b_row = b.row(p);
        for j in 0..n {
            for r in 0..R {
                block[r * n + j] += av[r] * b_row[j];
            }
        }
        p += 1;
    }
}

/// Row kernel for `A @ B`: compute output rows `i0..i1` of the (m,k)x(k,n)
/// product into `out_rows` (a zeroed `(i1-i0) × n` panel), in [`RU`]-row
/// register blocks (see [`mm_block`] for the determinism argument).
fn mm_rows(a: &Matrix, b: &Matrix, i0: usize, i1: usize, out_rows: &mut [f32]) {
    let (k, n) = (a.cols, b.cols);
    let mut i = i0;
    while i + RU <= i1 {
        let ri = i - i0;
        mm_block::<RU, _>(
            |r, p| a.row(i + r)[p],
            b,
            k,
            n,
            &mut out_rows[ri * n..(ri + RU) * n],
        );
        i += RU;
    }
    while i < i1 {
        let ri = i - i0;
        mm_block::<1, _>(|_, p| a.row(i)[p], b, k, n, &mut out_rows[ri * n..(ri + 1) * n]);
        i += 1;
    }
}

/// Row kernel for `Aᵀ @ B` with A (k,m), B (k,n): output rows `i0..i1` are
/// columns of A, gathered at stride m. Same blocking and ascending-k order
/// as [`mm_rows`].
fn mm_tn_rows(a: &Matrix, b: &Matrix, i0: usize, i1: usize, out_rows: &mut [f32]) {
    let (k, m, n) = (a.rows, a.cols, b.cols);
    let col = &a.data[..];
    let mut i = i0;
    while i + RU <= i1 {
        let ri = i - i0;
        mm_block::<RU, _>(
            |r, p| col[p * m + i + r],
            b,
            k,
            n,
            &mut out_rows[ri * n..(ri + RU) * n],
        );
        i += RU;
    }
    while i < i1 {
        let ri = i - i0;
        mm_block::<1, _>(|_, p| col[p * m + i], b, k, n, &mut out_rows[ri * n..(ri + 1) * n]);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.raw(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[1., 0., 0., 1., 1., 1.]);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        assert_eq!(via_tn, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 0., 0., 1., 0., 0., 0., 1., 1., 1., 1.]);
        let via_nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transposed());
        assert_eq!(via_nt, explicit);
    }

    #[test]
    fn broadcast_and_colsums_are_adjoint() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 1, &[5., 6.]);
        let c = a.hconcat(&b);
        assert_eq!(c.cols(), 3);
        let (l, r) = c.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut a = m(2, 2, &[3., 4., 0., 0.]);
        a.l2_normalize_rows();
        assert!((a.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((a.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0], "zero row untouched");
    }

    #[test]
    fn scale_and_add_scaled() {
        let mut a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[1., 1., 1.]);
        a.scale(2.0);
        a.add_scaled(&b, -1.0);
        assert_eq!(a.raw(), &[1., 3., 5.]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
