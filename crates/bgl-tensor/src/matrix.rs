//! Row-major dense `f32` matrix and its kernels.

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/buffer mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// The raw row-major buffer.
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// The raw row-major buffer, mutably.
    pub fn raw_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self @ other` — (m,k) x (k,n) -> (m,n). i-k-j loop order keeps the
    /// inner loop streaming over contiguous rows of `other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` — (k,m)ᵀ x (k,n) -> (m,n), used for weight gradients.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` — (m,k) x (n,k)ᵀ -> (m,n), used for input gradients.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                *o = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise in-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Broadcast-add a row vector to every row (bias add).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for i in 0..self.rows {
            for (x, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Multiply all elements by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in self.data.iter_mut() {
            *x *= s;
        }
    }

    /// Column sums — the bias gradient of a bias add.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(i)) {
                *s += x;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Map every element through `f`, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise product (Hadamard), returning a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// L2-normalize each row in place (used by GraphSAGE).
    pub fn l2_normalize_rows(&mut self) {
        for i in 0..self.rows {
            let row = self.row_mut(i);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for x in row.iter_mut() {
                    *x /= norm;
                }
            }
        }
    }

    /// Concatenate two matrices horizontally: (m,a) ++ (m,b) -> (m,a+b).
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Split a horizontally concatenated matrix back into (m,a) and (m,b).
    pub fn hsplit(&self, a: usize) -> (Matrix, Matrix) {
        assert!(a <= self.cols);
        let b = self.cols - a;
        let mut left = Matrix::zeros(self.rows, a);
        let mut right = Matrix::zeros(self.rows, b);
        for i in 0..self.rows {
            left.row_mut(i).copy_from_slice(&self.row(i)[..a]);
            right.row_mut(i).copy_from_slice(&self.row(i)[a..]);
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.raw(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[1., 0., 0., 1., 1., 1.]);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        assert_eq!(via_tn, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 0., 0., 1., 0., 0., 0., 1., 1., 1., 1.]);
        let via_nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transposed());
        assert_eq!(via_nt, explicit);
    }

    #[test]
    fn broadcast_and_colsums_are_adjoint() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 1, &[5., 6.]);
        let c = a.hconcat(&b);
        assert_eq!(c.cols(), 3);
        let (l, r) = c.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut a = m(2, 2, &[3., 4., 0., 0.]);
        a.l2_normalize_rows();
        assert!((a.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((a.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0], "zero row untouched");
    }

    #[test]
    fn scale_and_add_scaled() {
        let mut a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[1., 1., 1.]);
        a.scale(2.0);
        a.add_scaled(&b, -1.0);
        assert_eq!(a.raw(), &[1., 3., 5.]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
