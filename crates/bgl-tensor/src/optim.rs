//! Optimizers: SGD (with optional momentum) and Adam — the two the paper's
//! training stage mentions (§2.1, stage 3).

use crate::Matrix;

/// A parameter-update rule. `step` consumes one gradient for one parameter
/// tensor, identified by `slot` so the optimizer can keep per-parameter
/// state (momentum / Adam moments).
pub trait Optimizer {
    /// Apply one update to `param` given `grad`. `slot` must be stable and
    /// unique per parameter tensor across calls.
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix);

    /// Advance the optimizer's global step counter (call once per batch,
    /// after all `step` calls for that batch).
    fn next_batch(&mut self) {}
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, weight_decay: 0.0, velocity: Vec::new() }
    }

    fn slot_mut(&mut self, slot: usize) -> &mut Option<Matrix> {
        if self.velocity.len() <= slot {
            self.velocity.resize(slot + 1, None);
        }
        &mut self.velocity[slot]
    }

    /// Per-slot momentum buffers (`None` where the slot was never stepped).
    /// Together with [`Sgd::restore_velocity`] this makes the optimizer's
    /// full state serializable — restoring only the params silently resets
    /// the momentum and changes the training trajectory.
    pub fn velocity(&self) -> &[Option<Matrix>] {
        &self.velocity
    }

    /// Replace the momentum buffers wholesale (checkpoint restore).
    pub fn restore_velocity(&mut self, velocity: Vec<Option<Matrix>>) {
        self.velocity = velocity;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        let (lr, momentum, wd) = (self.lr, self.momentum, self.weight_decay);
        let mut update = grad.clone();
        if wd != 0.0 {
            update.add_scaled(param, wd);
        }
        if momentum != 0.0 {
            let v = self.slot_mut(slot);
            match v {
                Some(vel) => {
                    vel.scale(momentum);
                    vel.add_assign(&update);
                    update = vel.clone();
                }
                None => {
                    *v = Some(update.clone());
                }
            }
        }
        param.add_scaled(&update, -lr);
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: i32,
    moments: Vec<Option<(Matrix, Matrix)>>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, moments: Vec::new() }
    }

    fn slot_mut(&mut self, slot: usize) -> &mut Option<(Matrix, Matrix)> {
        if self.moments.len() <= slot {
            self.moments.resize(slot + 1, None);
        }
        &mut self.moments[slot]
    }

    /// The global step counter (`t` in Kingma & Ba's bias correction).
    pub fn step_count(&self) -> i32 {
        self.t
    }

    /// Per-slot first/second moment pairs (`None` where the slot was never
    /// stepped). Only [`GnnModel::param_vec`]-style parameter snapshots are
    /// NOT enough to resume training bitwise-identically: the moments and
    /// step counter here must be captured too, or the bias correction and
    /// effective per-parameter learning rates silently reset on restore.
    ///
    /// [`GnnModel::param_vec`]: ../bgl_gnn/trait.GnnModel.html
    pub fn moments(&self) -> &[Option<(Matrix, Matrix)>] {
        &self.moments
    }

    /// Restore the full internal state (checkpoint resume). `t` is the step
    /// counter as returned by [`Adam::step_count`]; `moments` replaces the
    /// per-slot buffers wholesale.
    pub fn restore_state(&mut self, t: i32, moments: Vec<Option<(Matrix, Matrix)>>) {
        self.t = t;
        self.moments = moments;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let t = (self.t + 1) as f32; // next_batch() may lag; use at-least-1
        let entry = self.slot_mut(slot);
        if entry.is_none() {
            *entry = Some((
                Matrix::zeros(param.rows(), param.cols()),
                Matrix::zeros(param.rows(), param.cols()),
            ));
        }
        let (m, v) = entry.as_mut().unwrap();
        for ((mi, vi), &g) in m
            .raw_mut()
            .iter_mut()
            .zip(v.raw_mut().iter_mut())
            .zip(grad.raw())
        {
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
        }
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        for ((p, &mi), &vi) in param
            .raw_mut()
            .iter_mut()
            .zip(m.raw())
            .zip(v.raw())
        {
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    fn next_batch(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 elementwise; gradient 2(x-3).
    fn quad_grad(x: &Matrix) -> Matrix {
        x.map(|v| 2.0 * (v - 3.0))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut x = Matrix::from_vec(1, 2, vec![0.0, 10.0]);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = quad_grad(&x);
            opt.step(0, &mut x, &g);
            opt.next_batch();
        }
        assert!(x.raw().iter().all(|&v| (v - 3.0).abs() < 1e-3), "{:?}", x);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mut opt: Sgd| {
            let mut x = Matrix::from_vec(1, 1, vec![10.0]);
            for _ in 0..20 {
                let g = quad_grad(&x);
                opt.step(0, &mut x, &g);
            }
            (x.get(0, 0) - 3.0).abs()
        };
        let plain = run(Sgd::new(0.02));
        let momentum = run(Sgd::with_momentum(0.02, 0.9));
        assert!(momentum < plain, "momentum {} !< plain {}", momentum, plain);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut x = Matrix::from_vec(1, 3, vec![-5.0, 0.0, 8.0]);
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            let g = quad_grad(&x);
            opt.step(0, &mut x, &g);
            opt.next_batch();
        }
        assert!(
            x.raw().iter().all(|&v| (v - 3.0).abs() < 1e-2),
            "adam did not converge: {:?}",
            x
        );
    }

    /// Restoring only the parameters after a simulated crash silently
    /// changes the training trajectory; restoring moments + step counter
    /// through [`Adam::restore_state`] continues bitwise-identically. This
    /// is the regression the checkpoint codec exists to prevent.
    #[test]
    fn params_only_restore_diverges_full_restore_does_not() {
        let steps_before = 7;
        let steps_after = 5;
        let run = |x: &mut Matrix, opt: &mut Adam, n: usize| {
            for _ in 0..n {
                let g = quad_grad(x);
                opt.step(0, x, &g);
                opt.next_batch();
            }
        };

        // Uninterrupted reference.
        let mut x_ref = Matrix::from_vec(1, 2, vec![-4.0, 9.0]);
        let mut opt_ref = Adam::new(0.05);
        run(&mut x_ref, &mut opt_ref, steps_before + steps_after);

        // Crash after `steps_before`: capture params and the full state.
        let mut x = Matrix::from_vec(1, 2, vec![-4.0, 9.0]);
        let mut opt = Adam::new(0.05);
        run(&mut x, &mut opt, steps_before);
        let params = x.clone();
        let (t, moments) = (opt.step_count(), opt.moments().to_vec());
        assert_eq!(t, steps_before as i32);
        assert!(moments[0].is_some(), "warmed slot must expose its moments");

        // Naive restore: params only, fresh optimizer.
        let mut x_naive = params.clone();
        let mut opt_naive = Adam::new(0.05);
        run(&mut x_naive, &mut opt_naive, steps_after);

        // Full restore: params + moments + step counter.
        let mut x_full = params;
        let mut opt_full = Adam::new(0.05);
        opt_full.restore_state(t, moments);
        run(&mut x_full, &mut opt_full, steps_after);

        assert_eq!(
            x_full.raw(),
            x_ref.raw(),
            "full-state restore must continue bitwise-identically"
        );
        assert_ne!(
            x_naive.raw(),
            x_ref.raw(),
            "params-only restore must visibly diverge from the uninterrupted run"
        );
    }

    #[test]
    fn sgd_velocity_roundtrips() {
        let mut x = Matrix::from_vec(1, 1, vec![10.0]);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        for _ in 0..3 {
            let g = quad_grad(&x);
            opt.step(0, &mut x, &g);
        }
        let vel = opt.velocity().to_vec();
        assert!(vel[0].is_some());
        let mut opt2 = Sgd::with_momentum(0.1, 0.9);
        opt2.restore_velocity(vel.clone());
        // One more identical step from identical state must match bitwise.
        let mut xa = x.clone();
        let mut xb = x.clone();
        let g = quad_grad(&x);
        opt.step(0, &mut xa, &g);
        opt2.step(0, &mut xb, &g);
        assert_eq!(xa.raw(), xb.raw());
    }

    #[test]
    fn independent_slots_have_independent_state() {
        let mut a = Matrix::from_vec(1, 1, vec![10.0]);
        let mut b = Matrix::from_vec(1, 1, vec![10.0]);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        // Update slot 0 twice, slot 1 once — velocities must differ.
        let g = Matrix::from_vec(1, 1, vec![1.0]);
        opt.step(0, &mut a, &g);
        opt.step(0, &mut a, &g);
        opt.step(1, &mut b, &g);
        assert!(a.get(0, 0) < b.get(0, 0));
    }
}
