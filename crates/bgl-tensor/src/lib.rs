//! # bgl-tensor — minimal dense tensor math for GNN training
//!
//! The paper runs its accuracy experiments (Table 5, Fig. 16) on CUDA via
//! DGL's GPU backend. This workspace has no GPU, so `bgl-gnn` trains the
//! same models on CPU with the `f32` matrix kernels in this crate: matmul,
//! row-wise broadcasting, activations, softmax/cross-entropy, dropout, and
//! the SGD/Adam optimizers. No external BLAS — the matmuls are row-panel
//! blocked kernels fanned out over a std-only worker pool ([`pool`]), with
//! serial paths kept bitwise-identical for the determinism contract (see
//! `matrix`'s module docs).
//!
//! Gradients are written explicitly (no autograd); every kernel with a
//! backward pass has a finite-difference test.

pub mod init;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod pool;

pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
