//! # bgl-tensor — minimal dense tensor math for GNN training
//!
//! The paper runs its accuracy experiments (Table 5, Fig. 16) on CUDA via
//! DGL's GPU backend. This workspace has no GPU, so `bgl-gnn` trains the
//! same models on CPU with the `f32` matrix kernels in this crate: matmul,
//! row-wise broadcasting, activations, softmax/cross-entropy, dropout, and
//! the SGD/Adam optimizers. No external BLAS — the matmul is a simple
//! blocked triple loop, plenty for the scaled-down graphs we train.
//!
//! Gradients are written explicitly (no autograd); every kernel with a
//! backward pass has a finite-difference test.

pub mod init;
pub mod matrix;
pub mod ops;
pub mod optim;

pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
