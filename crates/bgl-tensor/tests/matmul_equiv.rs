//! The matmul equivalence suite.
//!
//! Three properties, each asserted *bitwise* (`assert_eq!` on the raw
//! buffers, not approximate comparison):
//!
//! 1. every blocked variant agrees with a naive triple-loop reference on
//!    non-square shapes, including `k = 0` and `1 × n` edge cases;
//! 2. the pool-parallel entry points are bitwise-identical to the kept
//!    serial paths (the executor determinism contract);
//! 3. the transpose identities (`Aᵀ@B == transpose(A)@B`,
//!    `A@Bᵀ == A@transpose(B)`) hold exactly.
//!
//! ci.sh runs this suite under `--release` as well: the blocked kernels
//! take different code paths once the optimizer vectorizes them, and the
//! bitwise claim must hold there too.

use bgl_tensor::Matrix;
use proptest::prelude::*;
use rand::prelude::*;

/// Naive i-j-k triple loop, single accumulator ascending k — the reference
/// semantics every kernel must reproduce bit-for-bit.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            let mut p = 0;
            // Mirror the kernels' 4-way left-to-right unroll groups: the
            // chained adds evaluate in the same order as separate += ops,
            // so this is still plain ascending-k accumulation.
            while p + 4 <= k {
                acc = (((acc + a.get(i, p) * b.get(p, j))
                    + a.get(i, p + 1) * b.get(p + 1, j))
                    + a.get(i, p + 2) * b.get(p + 2, j))
                    + a.get(i, p + 3) * b.get(p + 3, j);
                p += 4;
            }
            while p < k {
                acc += a.get(i, p) * b.get(p, j);
                p += 1;
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
    Matrix::from_vec(rows, cols, data)
}

/// The shapes the ISSUE pins: non-square, k = 0, 1×n, plus the fig16
/// training shapes (frontier × dim @ dim × hidden and its gradients).
fn pinned_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (3, 5, 2),
        (1, 7, 9),    // 1×n output row
        (9, 1, 4),    // k = 1
        (4, 0, 6),    // k = 0: all-zero output, no accumulation at all
        (0, 3, 3),    // empty output
        (17, 23, 13), // awkward primes around the unroll factor
        (64, 64, 64),
        (311, 64, 32), // fig16 GraphSAGE forward shape (frontier@dim→hidden)
        (311, 96, 32), // fig16 GraphSAGE concat-layer shape
        (128, 32, 47), // classifier head onto num_classes
    ]
}

#[test]
fn blocked_variants_match_reference_on_pinned_shapes() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for (m, k, n) in pinned_shapes() {
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let want = reference_matmul(&a, &b);
        assert_eq!(a.matmul(&b).raw(), want.raw(), "matmul {m}x{k}x{n}");
        assert_eq!(a.matmul_serial(&b).raw(), want.raw(), "serial {m}x{k}x{n}");
        let at = a.transposed();
        assert_eq!(at.matmul_tn(&b).raw(), want.raw(), "tn {m}x{k}x{n}");
        assert_eq!(at.matmul_tn_serial(&b).raw(), want.raw(), "tn serial {m}x{k}x{n}");
        let bt = b.transposed();
        assert_eq!(a.matmul_nt(&bt).raw(), want.raw(), "nt {m}x{k}x{n}");
        assert_eq!(a.matmul_nt_serial(&bt).raw(), want.raw(), "nt serial {m}x{k}x{n}");
    }
}

#[test]
fn parallel_is_bitwise_identical_to_serial_on_large_products() {
    // Big enough that the parallel dispatch actually engages
    // (2·m·k·n ≥ PAR_MIN_FLOPS) with many panels in flight.
    let mut rng = StdRng::seed_from_u64(7);
    for &(m, k, n) in &[(997, 64, 33), (256, 128, 128), (1024, 31, 17)] {
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        assert_eq!(a.matmul(&b).raw(), a.matmul_serial(&b).raw(), "matmul {m}x{k}x{n}");
        let at = a.transposed();
        assert_eq!(
            at.matmul_tn(&b).raw(),
            at.matmul_tn_serial(&b).raw(),
            "tn {m}x{k}x{n}"
        );
        let bt = b.transposed();
        assert_eq!(
            a.matmul_nt(&bt).raw(),
            a.matmul_nt_serial(&bt).raw(),
            "nt {m}x{k}x{n}"
        );
    }
}

#[test]
fn special_values_flow_through_identically() {
    // ±0.0 / ±inf / NaN payloads: the kernels must not take value-dependent
    // shortcuts (the old zero-skip did), so serial and parallel stay
    // bit-identical even on pathological inputs. NaN != NaN, so compare
    // bit patterns.
    let mut rng = StdRng::seed_from_u64(99);
    let specials = [0.0f32, -0.0, f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 1.5, -2.5];
    let (m, k, n) = (65, 33, 41);
    let fill = |rng: &mut StdRng, len: usize| -> Vec<f32> {
        (0..len).map(|_| specials[rng.random_range(0..specials.len())]).collect()
    };
    let a = Matrix::from_vec(m, k, fill(&mut rng, m * k));
    let b = Matrix::from_vec(k, n, fill(&mut rng, k * n));
    let bits = |mat: &Matrix| -> Vec<u32> { mat.raw().iter().map(|x| x.to_bits()).collect() };
    assert_eq!(bits(&a.matmul(&b)), bits(&a.matmul_serial(&b)));
    let at = a.transposed();
    assert_eq!(bits(&at.matmul_tn(&b)), bits(&at.matmul_tn_serial(&b)));
    assert_eq!(bits(&at.matmul_tn(&b)), bits(&at.transposed().matmul(&b)));
    let bt = b.transposed();
    assert_eq!(bits(&a.matmul_nt(&bt)), bits(&a.matmul_nt_serial(&bt)));
    assert_eq!(bits(&a.matmul_nt(&bt)), bits(&a.matmul(&bt.transposed())));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property: on arbitrary rectangular shapes and values, all three
    /// variants equal the reference bitwise, and parallel == serial.
    #[test]
    fn matmul_equivalence(
        m in 0usize..48,
        k in 0usize..48,
        n in 1usize..48,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let want = reference_matmul(&a, &b);
        prop_assert_eq!(a.matmul(&b).raw(), want.raw());
        prop_assert_eq!(a.matmul_serial(&b).raw(), want.raw());
        let at = a.transposed();
        prop_assert_eq!(at.matmul_tn(&b).raw(), want.raw());
        let bt = b.transposed();
        prop_assert_eq!(a.matmul_nt(&bt).raw(), want.raw());
    }
}
