//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and values.

use bgl_tensor::ops::{cross_entropy_with_grad, leaky_relu, relu, softmax_rows};
use bgl_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    /// (A B) C == A (B C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        ad in proptest::collection::vec(-3.0f32..3.0, 6 * 5),
        bd in proptest::collection::vec(-3.0f32..3.0, 5 * 4),
        cd in proptest::collection::vec(-3.0f32..3.0, 4 * 3),
    ) {
        let a = Matrix::from_vec(6, 5, ad);
        let b = Matrix::from_vec(5, 4, bd);
        let c = Matrix::from_vec(4, 3, cd);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.raw().iter().zip(right.raw()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs()), "{} vs {}", x, y);
        }
    }

    /// matmul_tn(A, B) == Aᵀ B and matmul_nt(A, B) == A Bᵀ.
    #[test]
    fn transpose_fusions_match_explicit(
        ad in proptest::collection::vec(-5.0f32..5.0, 4 * 3),
        bd in proptest::collection::vec(-5.0f32..5.0, 4 * 2),
    ) {
        let a = Matrix::from_vec(4, 3, ad);
        let b = Matrix::from_vec(4, 2, bd);
        let tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        prop_assert_eq!(tn.raw(), explicit.raw());
        // A · Bᵀ with both 4-col operands sharing the inner dimension.
        let nt = a.transposed().matmul_nt(&b.transposed());
        let explicit2 = a.transposed().matmul(&b);
        for (x, y) in nt.raw().iter().zip(explicit2.raw()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Transposing twice is the identity.
    #[test]
    fn double_transpose_is_identity(a in arb_matrix(8, 8)) {
        let tt = a.transposed().transposed();
        prop_assert_eq!(tt.raw(), a.raw());
    }

    /// Softmax rows are valid distributions and shift-invariant.
    #[test]
    fn softmax_is_shifted_invariant_distribution(a in arb_matrix(5, 6), shift in -5.0f32..5.0) {
        let s1 = softmax_rows(&a);
        let shifted = a.map(|x| x + shift);
        let s2 = softmax_rows(&shifted);
        for i in 0..a.rows() {
            let sum: f32 = s1.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for (x, y) in s1.row(i).iter().zip(s2.row(i)) {
                prop_assert!((x - y).abs() < 1e-4, "softmax not shift invariant");
            }
        }
    }

    /// Cross-entropy gradient rows sum to ~0 (softmax minus one-hot).
    #[test]
    fn ce_grad_rows_sum_to_zero(
        a in arb_matrix(6, 5),
        label_seed in 0u16..5,
    ) {
        let labels: Vec<u16> =
            (0..a.rows()).map(|i| ((label_seed as usize + i) % a.cols()) as u16).collect();
        let (loss, grad) = cross_entropy_with_grad(&a, &labels);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        for i in 0..grad.rows() {
            let sum: f32 = grad.row(i).iter().sum();
            prop_assert!(sum.abs() < 1e-4, "row {} grad sums to {}", i, sum);
        }
    }

    /// ReLU == LeakyReLU(0); both are idempotent on their own output.
    #[test]
    fn relu_identities(a in arb_matrix(6, 6)) {
        let r = relu(&a);
        let lk = leaky_relu(&a, 0.0);
        prop_assert_eq!(r.raw(), lk.raw());
        let rr = relu(&r);
        prop_assert_eq!(rr.raw(), r.raw());
        prop_assert!(r.raw().iter().all(|&x| x >= 0.0));
    }

    /// hconcat/hsplit round trip.
    #[test]
    fn hconcat_hsplit_roundtrip(
        ad in proptest::collection::vec(-5.0f32..5.0, 3 * 4),
        bd in proptest::collection::vec(-5.0f32..5.0, 3 * 2),
    ) {
        let a = Matrix::from_vec(3, 4, ad);
        let b = Matrix::from_vec(3, 2, bd);
        let joined = a.hconcat(&b);
        let (l, r) = joined.hsplit(4);
        prop_assert_eq!(l.raw(), a.raw());
        prop_assert_eq!(r.raw(), b.raw());
    }

    /// col_sums is the adjoint of add_row_broadcast:
    /// <A + 1·bᵀ, C> = <A, C> + <b, col_sums(C)>.
    #[test]
    fn broadcast_colsum_adjoint(
        cd in proptest::collection::vec(-2.0f32..2.0, 4 * 3),
        b in proptest::collection::vec(-2.0f32..2.0, 3),
    ) {
        let c = Matrix::from_vec(4, 3, cd);
        let mut a = Matrix::zeros(4, 3);
        a.add_row_broadcast(&b);
        let inner_ac: f32 = a.raw().iter().zip(c.raw()).map(|(x, y)| x * y).sum();
        let inner_b: f32 = b.iter().zip(c.col_sums()).map(|(x, y)| x * y).sum();
        prop_assert!((inner_ac - inner_b).abs() < 1e-3);
    }
}
