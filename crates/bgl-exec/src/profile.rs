//! Stage profiles: the quantities §3.4's optimizer consumes.
//!
//! All CPU times are *single-core work* in seconds per mini-batch (the
//! optimizer divides by the core allocation, assuming linear scaling for
//! every stage except the cache). Data sizes are bytes per mini-batch.

use serde::{Deserialize, Serialize};

/// Profiled per-batch quantities for the 8-stage pipeline (Fig. 10).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage 1 — processing sampling requests on graph store CPUs
    /// (single-core seconds per batch).
    pub t1: f64,
    /// Stage 2 — constructing subgraphs on graph store CPUs.
    pub t2: f64,
    /// Stage 3 — network transfer of sampled subgraphs + missed features
    /// (seconds per batch; not CPU-scalable).
    pub t_net: f64,
    /// Stage 4 — subgraph processing (format conversion) on worker CPUs.
    pub t3: f64,
    /// Stage 5 — subgraph bytes over PCIe (D_I).
    pub d_i: f64,
    /// Stage 6 — cache workflow: `f(c4) = a / min(c4, knee) + d +
    /// degrade · max(0, c4 − knee)`. `a` is the parallel work, `d` the
    /// irreducible serial part.
    pub cache_a: f64,
    pub cache_d: f64,
    /// Core count beyond which the cache stage stops scaling (the paper
    /// observed ≈ 40) and starts to *degrade* (OpenMP sync + memory
    /// bandwidth, §3.4).
    pub cache_knee: usize,
    /// Per-extra-core degradation beyond the knee (seconds/core).
    pub cache_degrade: f64,
    /// Stage 7 — missed-feature bytes over PCIe (D_II).
    pub d_ii: f64,
    /// Stage 8 — GPU model computation (seconds per batch, per GPU).
    pub t_gpu: f64,
}

impl StageProfile {
    /// A profile shaped like the paper's running example (§2.2): DGL-style
    /// data path on Ogbn-products, batch 1000, fanout {15,10,5}: ~200 MB of
    /// features per batch, 20 ms GPU compute, and CPU-side sampling /
    /// subgraph construction / format conversion heavy enough that the
    /// contended pipeline lands at "a few mini-batches per second" (Fig. 2)
    /// and single-digit GPU utilization (Fig. 3).
    pub fn paper_example() -> Self {
        StageProfile {
            t1: 4.0,
            t2: 8.0,
            t_net: 0.018,
            t3: 6.0,
            d_i: 5.0e6,
            cache_a: 0.50,
            cache_d: 0.004,
            cache_knee: 40,
            cache_degrade: 2.0e-4,
            d_ii: 195.0e6,
            t_gpu: 0.020,
        }
    }

    /// Cache-stage completion time with `c4` cores.
    pub fn cache_time(&self, c4: usize) -> f64 {
        let c4 = c4.max(1);
        let knee = self.cache_knee.max(1);
        self.cache_a / c4.min(knee) as f64
            + self.cache_d
            + self.cache_degrade * c4.saturating_sub(knee) as f64
    }

    /// All eight stage times under a concrete allocation. `pcie_unit` is
    /// the bandwidth of one PCIe share in bytes/second.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_times(
        &self,
        c1: usize,
        c2: usize,
        c3: usize,
        c4: usize,
        b_i: usize,
        b_ii: usize,
        pcie_unit: f64,
    ) -> [f64; 8] {
        [
            self.t1 / c1.max(1) as f64,
            self.t2 / c2.max(1) as f64,
            self.t_net,
            self.t3 / c3.max(1) as f64,
            self.d_i / (b_i.max(1) as f64 * pcie_unit),
            self.cache_time(c4),
            self.d_ii / (b_ii.max(1) as f64 * pcie_unit),
            self.t_gpu,
        ]
    }

    /// Human-readable stage names, aligned with `stage_times` indices.
    pub fn stage_names() -> [&'static str; 8] {
        [
            "sample-requests",
            "construct-subgraphs",
            "network",
            "subgraph-processing",
            "pcie-subgraph",
            "cache-workflow",
            "pcie-features",
            "gpu-compute",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_time_scales_then_degrades() {
        let p = StageProfile::paper_example();
        let t1 = p.cache_time(1);
        let t20 = p.cache_time(20);
        let t40 = p.cache_time(40);
        let t96 = p.cache_time(96);
        assert!(t20 < t1);
        assert!(t40 < t20);
        assert!(
            t96 > t40,
            "beyond the knee more cores must hurt: {} vs {}",
            t96,
            t40
        );
    }

    #[test]
    fn stage_times_shape() {
        let p = StageProfile::paper_example();
        let t = p.stage_times(10, 20, 30, 40, 6, 6, 1.0e9);
        assert_eq!(t.len(), 8);
        assert!((t[0] - 0.4).abs() < 1e-9);
        assert!((t[2] - p.t_net).abs() < 1e-12);
        assert!((t[7] - p.t_gpu).abs() < 1e-12);
    }

    #[test]
    fn paper_example_is_preprocessing_bound() {
        // The motivation plot (Fig. 2): preprocessing ≫ GPU compute even
        // with a generous split.
        let p = StageProfile::paper_example();
        let t = p.stage_times(48, 48, 48, 48, 6, 6, 1.06e9);
        let pre_max = t[..7].iter().cloned().fold(0.0, f64::max);
        assert!(
            pre_max > 3.0 * t[7],
            "preprocessing {} should dominate gpu {}",
            pre_max,
            t[7]
        );
    }
}
