//! # bgl-exec — pipeline execution model and resource isolation (§3.4)
//!
//! The paper divides GNN training into 8 asynchronous pipeline stages
//! (Fig. 10) and observes that letting them freely compete for CPU cores
//! and PCIe bandwidth wrecks end-to-end throughput. BGL instead profiles
//! each stage and solves
//!
//! ```text
//! min max{ T1/c1, T2/c2, T_net, T3/c3, D_I/b_I, f(c4), D_II/b_II, T_gpu }
//!   s.t. c1 + c2 ≤ C_gs,   c3 + c4 ≤ C_wm,   b_I + b_II ≤ B_pcie
//! ```
//!
//! by brute force (the three constraint pairs touch disjoint objective
//! terms, so the search is three independent 1-D sweeps — the paper's
//! `O(C_gs² + C_wm² + B_pcie²)` bound).
//!
//! * [`profile`] — [`profile::StageProfile`]: the profiled quantities, with
//!   a constructor that measures them from the real substrate (store
//!   traffic, cache miss bytes, model FLOPs on the V100 device model);
//! * [`allocator`] — the brute-force solver, plus the free-contention model
//!   ("BGL w/o isolation", Fig. 15) where every stage grabs all cores and
//!   pays oversubscription and OpenMP-style scaling penalties;
//! * [`build`] — turn an allocation into a `bgl_sim` tandem pipeline and
//!   read off throughput and GPU utilization;
//! * [`runtime`] — the real thing: an OS-threaded 8-stage executor with
//!   bounded inter-stage buffers running the actual sampler / store /
//!   cache / model substrate, differentially validated against both a
//!   serial reference loop and the `bgl_sim` tandem-queue prediction.

pub mod allocator;
pub mod build;
pub mod checkpoint;
pub mod profile;
pub mod runtime;

pub use allocator::{solve, Allocation, ContentionModel};
pub use checkpoint::{
    fingerprint_batches, AdamState, Checkpoint, CheckpointPolicy, CheckpointStore, CkptError,
    ExecFaultPlan,
};
pub use profile::StageProfile;
pub use runtime::{
    resume_from, run, run_serial, spawn, spawn_resumed, EpochTask, ExecConfig, ExecError,
    ExecHandle, ExecReport, STAGE_NAMES,
};
