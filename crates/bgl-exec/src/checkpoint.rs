//! Deterministic checkpoint/resume for the threaded executor.
//!
//! Long-running training (the paper's billion-node regime) loses a full
//! epoch of in-flight state on any trainer death: model parameters,
//! optimizer moments, the epoch/batch cursor, per-batch RNG stream keys
//! and the training-node ordering. This module makes all of it durable and
//! — critically — *deterministically* recoverable: resuming from a
//! checkpoint produces a final `param_vec`, per-batch loss sequence and
//! `MiniBatch::digest()` trace bitwise-identical to a run that never
//! crashed (`tests/ckpt_recovery.rs` pins this, locally and over TCP).
//!
//! ## Format
//!
//! A checkpoint is one file, written atomically (temp file + fsync +
//! rename) by a dedicated writer thread so the train stage never waits on
//! disk:
//!
//! ```text
//! [magic "BGLCKPT1"][version u32][payload_len u64][payload][fnv64 checksum]
//! ```
//!
//! All integers little-endian. The checksum is FNV-1a 64 over every byte
//! that precedes it, so a file truncated at *any* offset — a torn write
//! from a crash mid-checkpoint — fails closed: [`Checkpoint::decode`]
//! returns a typed [`CkptError`], never garbage state, and
//! [`CheckpointStore::load_latest`] falls back to the previous retained
//! checkpoint.
//!
//! The payload captures everything resumption needs:
//!
//! * the base RNG `seed` and sampler `fanouts` (per-batch RNG streams are
//!   re-derived as `seed ^ hash(batch_index)`, so storing the seed is
//!   storing every stream);
//! * a fingerprint of the training-node ordering (the epoch's seed
//!   batches), so a checkpoint cannot be resumed against a different
//!   epoch ordering;
//! * the batch `cursor` (batches fully applied by the reorder-buffer train
//!   stage) plus the per-batch losses, train order and subgraph digests up
//!   to it;
//! * the flattened model parameters and the full Adam state (moments and
//!   step counter — restoring params alone silently changes the
//!   trajectory; see `bgl_tensor::optim`'s divergence regression test).

use bgl_graph::NodeId;
use bgl_tensor::{Adam, Matrix};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::PathBuf;

/// File magic: 8 bytes, versioned by suffix.
pub const CKPT_MAGIC: &[u8; 8] = b"BGLCKPT1";
/// Current codec version.
pub const CKPT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8;
const CHECKSUM_LEN: usize = 8;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be decoded, loaded, or used for resumption.
/// Every failure mode is typed — corruption never panics and never yields
/// a partially-applied state.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure reading or writing.
    Io(io::Error),
    /// The file does not start with [`CKPT_MAGIC`].
    BadMagic,
    /// The magic matched but the version is not [`CKPT_VERSION`].
    BadVersion { found: u32 },
    /// The file ends before the declared payload + checksum (torn write).
    Truncated,
    /// The trailing FNV-1a 64 checksum does not match the bytes.
    ChecksumMismatch { expected: u64, found: u64 },
    /// The checkpoint is internally valid but does not match the run it is
    /// being resumed into (wrong seed, ordering, shape, …).
    Mismatch(String),
    /// No valid checkpoint exists in the store.
    NoCheckpoint,
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::BadMagic => write!(f, "bad checkpoint magic"),
            CkptError::BadVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (expected {CKPT_VERSION})")
            }
            CkptError::Truncated => write!(f, "checkpoint truncated (torn write)"),
            CkptError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: expected {expected:#018x}, found {found:#018x}"
            ),
            CkptError::Mismatch(why) => write!(f, "checkpoint does not match this run: {why}"),
            CkptError::NoCheckpoint => write!(f, "no valid checkpoint found"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// FNV-1a 64 (same family as MiniBatch::digest) and the batch fingerprint
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-sensitive fingerprint of an epoch's seed batches (the
/// training-node ordering). Two orderings that differ in any batch
/// boundary, node, or position fingerprint differently.
pub fn fingerprint_batches(batches: &[Vec<NodeId>]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(batches.len() as u64);
    for batch in batches {
        eat(batch.len() as u64);
        for &n in batch {
            eat(n as u64);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Optimizer state capture
// ---------------------------------------------------------------------------

/// Serializable snapshot of an [`Adam`] optimizer: hyperparameters, step
/// counter and per-slot moment pairs. `GnnModel::param_vec` alone is not
/// enough to resume training bitwise-identically — this is the rest.
#[derive(Clone, Debug, PartialEq)]
pub struct AdamState {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub t: i32,
    pub moments: Vec<Option<(Matrix, Matrix)>>,
}

impl AdamState {
    /// Snapshot `opt`'s full internal state.
    pub fn capture(opt: &Adam) -> Self {
        AdamState {
            lr: opt.lr,
            beta1: opt.beta1,
            beta2: opt.beta2,
            eps: opt.eps,
            t: opt.step_count(),
            moments: opt.moments().to_vec(),
        }
    }

    /// Overwrite `opt` with this snapshot.
    pub fn restore_into(&self, opt: &mut Adam) {
        opt.lr = self.lr;
        opt.beta1 = self.beta1;
        opt.beta2 = self.beta2;
        opt.eps = self.eps;
        opt.restore_state(self.t, self.moments.clone());
    }
}

// ---------------------------------------------------------------------------
// The checkpoint itself + codec
// ---------------------------------------------------------------------------

/// One durable snapshot of mid-epoch training state.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Base RNG seed of the run (per-batch streams derive from it).
    pub seed: u64,
    /// Sampler fanouts of the run.
    pub fanouts: Vec<usize>,
    /// [`fingerprint_batches`] of the epoch's training-node ordering.
    pub batches_fingerprint: u64,
    /// Total seed batches in the epoch.
    pub num_batches: u64,
    /// Batches fully applied by the train stage; resume replays from here.
    pub cursor: u64,
    /// Flattened model parameters at the cursor.
    pub params: Vec<f32>,
    /// Full optimizer state at the cursor.
    pub opt: AdamState,
    /// Per-batch losses for batches `0..cursor`.
    pub losses: Vec<f32>,
    /// Batch indices in application order (must be `0..cursor`).
    pub train_order: Vec<u64>,
    /// Sampled-subgraph digests for batches `0..cursor`.
    pub digests: Vec<u64>,
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.pos + n > self.bytes.len() {
            return Err(CkptError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Length-prefixed f32 vector with a sanity cap so a corrupt length
    /// cannot trigger an absurd preallocation.
    fn f32_vec(&mut self) -> Result<Vec<f32>, CkptError> {
        let n = self.u64()? as usize;
        if n.checked_mul(4).is_none_or(|b| self.pos + b > self.bytes.len()) {
            return Err(CkptError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.u64()? as usize;
        if n.checked_mul(8).is_none_or(|b| self.pos + b > self.bytes.len()) {
            return Err(CkptError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }
}

fn put_f32s(out: &mut Vec<u8>, v: &[f32]) {
    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u64s(out: &mut Vec<u8>, v: &[u64]) {
    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn read_matrix(r: &mut Reader<'_>) -> Result<Matrix, CkptError> {
    let rows = r.u64()? as usize;
    let cols = r.u64()? as usize;
    let data = r.f32_vec()?;
    // Checked product: a crafted rows×cols header must not overflow the
    // shape arithmetic before the comparison rejects it.
    if rows.checked_mul(cols) != Some(data.len()) {
        return Err(CkptError::Mismatch(format!(
            "matrix payload {} != {rows}x{cols}",
            data.len()
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    put_f32s(out, m.raw());
}

impl Checkpoint {
    /// Serialize to the framed, checksummed on-disk format.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&self.seed.to_le_bytes());
        p.extend_from_slice(&(self.fanouts.len() as u64).to_le_bytes());
        for &f in &self.fanouts {
            p.extend_from_slice(&(f as u64).to_le_bytes());
        }
        p.extend_from_slice(&self.batches_fingerprint.to_le_bytes());
        p.extend_from_slice(&self.num_batches.to_le_bytes());
        p.extend_from_slice(&self.cursor.to_le_bytes());
        put_f32s(&mut p, &self.params);
        p.extend_from_slice(&self.opt.lr.to_le_bytes());
        p.extend_from_slice(&self.opt.beta1.to_le_bytes());
        p.extend_from_slice(&self.opt.beta2.to_le_bytes());
        p.extend_from_slice(&self.opt.eps.to_le_bytes());
        p.extend_from_slice(&(self.opt.t as i64).to_le_bytes());
        p.extend_from_slice(&(self.opt.moments.len() as u64).to_le_bytes());
        for slot in &self.opt.moments {
            match slot {
                None => p.push(0),
                Some((m, v)) => {
                    p.push(1);
                    put_matrix(&mut p, m);
                    put_matrix(&mut p, v);
                }
            }
        }
        put_f32s(&mut p, &self.losses);
        put_u64s(&mut p, &self.train_order);
        put_u64s(&mut p, &self.digests);

        let mut out = Vec::with_capacity(HEADER_LEN + p.len() + CHECKSUM_LEN);
        out.extend_from_slice(CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(&p);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode a file produced by [`Checkpoint::encode`]. Any truncation,
    /// bit flip, trailing garbage, or foreign file is a typed error.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        if bytes.len() < 8 {
            return Err(CkptError::Truncated);
        }
        if &bytes[..8] != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(CkptError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != CKPT_VERSION {
            return Err(CkptError::BadVersion { found: version });
        }
        let payload_len =
            u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().unwrap()) as usize;
        let total = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|t| t.checked_add(CHECKSUM_LEN))
            .ok_or(CkptError::Truncated)?;
        if bytes.len() < total {
            return Err(CkptError::Truncated);
        }
        if bytes.len() > total {
            return Err(CkptError::Mismatch(format!(
                "{} trailing bytes after checksum",
                bytes.len() - total
            )));
        }
        let expected = fnv1a(&bytes[..total - CHECKSUM_LEN]);
        let found = u64::from_le_bytes(bytes[total - CHECKSUM_LEN..].try_into().unwrap());
        if expected != found {
            return Err(CkptError::ChecksumMismatch { expected, found });
        }

        let mut r = Reader { bytes: &bytes[HEADER_LEN..total - CHECKSUM_LEN], pos: 0 };
        let seed = r.u64()?;
        let nf = r.u64()? as usize;
        if nf > 64 {
            return Err(CkptError::Mismatch(format!("implausible fanout count {nf}")));
        }
        let mut fanouts = Vec::with_capacity(nf);
        for _ in 0..nf {
            fanouts.push(r.u64()? as usize);
        }
        let batches_fingerprint = r.u64()?;
        let num_batches = r.u64()?;
        let cursor = r.u64()?;
        let params = r.f32_vec()?;
        let opt = {
            let lr = r.f32()?;
            let beta1 = r.f32()?;
            let beta2 = r.f32()?;
            let eps = r.f32()?;
            let t = i32::try_from(r.i64()?)
                .map_err(|_| CkptError::Mismatch("optimizer step does not fit i32".into()))?;
            let slots = r.u64()? as usize;
            if slots > 1 << 20 {
                return Err(CkptError::Mismatch(format!("implausible slot count {slots}")));
            }
            let mut moments = Vec::with_capacity(slots);
            for _ in 0..slots {
                moments.push(match r.u8()? {
                    0 => None,
                    1 => Some((read_matrix(&mut r)?, read_matrix(&mut r)?)),
                    tag => {
                        return Err(CkptError::Mismatch(format!("bad moment tag {tag}")))
                    }
                });
            }
            AdamState { lr, beta1, beta2, eps, t, moments }
        };
        let losses = r.f32_vec()?;
        let train_order = r.u64_vec()?;
        let digests = r.u64_vec()?;
        if r.pos != r.bytes.len() {
            return Err(CkptError::Mismatch(format!(
                "{} unread payload bytes",
                r.bytes.len() - r.pos
            )));
        }
        let ckpt = Checkpoint {
            seed,
            fanouts,
            batches_fingerprint,
            num_batches,
            cursor,
            params,
            opt,
            losses,
            train_order,
            digests,
        };
        ckpt.validate_internal()?;
        Ok(ckpt)
    }

    /// Internal-consistency checks that hold for every well-formed
    /// checkpoint, independent of the run it resumes into.
    fn validate_internal(&self) -> Result<(), CkptError> {
        if self.cursor > self.num_batches {
            return Err(CkptError::Mismatch(format!(
                "cursor {} beyond epoch of {} batches",
                self.cursor, self.num_batches
            )));
        }
        let c = self.cursor as usize;
        if self.losses.len() != c || self.train_order.len() != c || self.digests.len() != c {
            return Err(CkptError::Mismatch(format!(
                "prefix lengths (losses {}, order {}, digests {}) != cursor {}",
                self.losses.len(),
                self.train_order.len(),
                self.digests.len(),
                c
            )));
        }
        if !self.train_order.iter().enumerate().all(|(i, &o)| o == i as u64) {
            return Err(CkptError::Mismatch(
                "train order is not the identity prefix".to_string(),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Policy + on-disk store
// ---------------------------------------------------------------------------

/// When and where the executor checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory holding the checkpoint files.
    pub dir: PathBuf,
    /// Write a checkpoint after every `every_batches` trained batches.
    pub every_batches: usize,
    /// Keep the newest `retain` checkpoint files (≥ 2 so a torn newest
    /// write always leaves a good predecessor).
    pub retain: usize,
}

impl CheckpointPolicy {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { dir: dir.into(), every_batches: 8, retain: 2 }
    }

    pub fn every(mut self, batches: usize) -> Self {
        self.every_batches = batches.max(1);
        self
    }

    pub fn retain(mut self, n: usize) -> Self {
        self.retain = n.max(2);
        self
    }
}

/// Directory of versioned checkpoint files with atomic writes, bounded
/// retention, and checksum-gated loading.
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    ctr_writes: bgl_obs::Counter,
    ctr_bytes: bgl_obs::Counter,
    ctr_torn_rejected: bgl_obs::Counter,
    hist_write_ns: bgl_obs::Histogram,
}

impl CheckpointStore {
    /// Open (creating if needed) the store at `policy.dir`, reporting
    /// `exec.ckpt.*` metrics to `reg`.
    pub fn open(policy: &CheckpointPolicy, reg: &bgl_obs::Registry) -> Result<Self, CkptError> {
        fs::create_dir_all(&policy.dir)?;
        Ok(CheckpointStore {
            dir: policy.dir.clone(),
            retain: policy.retain.max(2),
            ctr_writes: reg.counter("exec.ckpt.writes"),
            ctr_bytes: reg.counter("exec.ckpt.bytes"),
            ctr_torn_rejected: reg.counter("exec.ckpt.torn_writes_rejected"),
            hist_write_ns: reg.histogram("exec.ckpt.write_ns"),
        })
    }

    fn file_name(cursor: u64) -> String {
        format!("ckpt-{cursor:010}.bin")
    }

    /// Checkpoint files present, sorted oldest → newest (zero-padded
    /// cursor in the name makes lexicographic = numeric order).
    pub fn list(&self) -> Result<Vec<PathBuf>, CkptError> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
                    .unwrap_or(false)
            })
            .collect();
        files.sort();
        Ok(files)
    }

    /// Atomically persist `ckpt`: temp file + fsync + rename, then fsync
    /// the directory and prune beyond the retention bound. Returns the
    /// final path.
    pub fn write(&self, ckpt: &Checkpoint) -> Result<PathBuf, CkptError> {
        self.write_inner(ckpt, None)
    }

    /// Like [`CheckpointStore::write`] but, when `torn_keep` is `Some(k)`,
    /// simulate a crash mid-write: only the first `k` bytes land, directly
    /// at the *final* path with no fsync/rename dance — the worst-case
    /// torn write the checksum must catch. Chaos-harness only.
    pub fn write_torn(&self, ckpt: &Checkpoint, torn_keep: usize) -> Result<PathBuf, CkptError> {
        self.write_inner(ckpt, Some(torn_keep))
    }

    fn write_inner(
        &self,
        ckpt: &Checkpoint,
        torn_keep: Option<usize>,
    ) -> Result<PathBuf, CkptError> {
        let t0 = std::time::Instant::now();
        let bytes = ckpt.encode();
        let final_path = self.dir.join(Self::file_name(ckpt.cursor));
        if let Some(keep) = torn_keep {
            let keep = keep.min(bytes.len().saturating_sub(1));
            let mut f = File::create(&final_path)?;
            f.write_all(&bytes[..keep])?;
            // No fsync, no rename: the simulated process died right here.
            return Ok(final_path);
        }
        let tmp_path = self.dir.join(format!(".{}.tmp", Self::file_name(ckpt.cursor)));
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable (POSIX: fsync the directory).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.ctr_writes.incr();
        self.ctr_bytes.add(bytes.len() as u64);
        self.hist_write_ns.record(t0.elapsed().as_nanos() as u64);
        self.prune()?;
        Ok(final_path)
    }

    fn prune(&self) -> Result<(), CkptError> {
        let files = self.list()?;
        if files.len() > self.retain {
            for old in &files[..files.len() - self.retain] {
                let _ = fs::remove_file(old);
            }
        }
        Ok(())
    }

    /// Load the newest checkpoint that passes every integrity check,
    /// rejecting (and counting) torn or corrupt newer files. Returns the
    /// checkpoint and how many files were rejected before it.
    pub fn load_latest(&self) -> Result<(Checkpoint, usize), CkptError> {
        let mut rejected = 0usize;
        for path in self.list()?.into_iter().rev() {
            match fs::read(&path).map_err(CkptError::from).and_then(|b| Checkpoint::decode(&b)) {
                Ok(ckpt) => return Ok((ckpt, rejected)),
                Err(_) => {
                    rejected += 1;
                    self.ctr_torn_rejected.incr();
                }
            }
        }
        Err(CkptError::NoCheckpoint)
    }
}

// ---------------------------------------------------------------------------
// Executor fault plan (PR 1's seeded chaos, extended to the trainer)
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, declarative fault schedule for the *executor* — the trainer-
/// side counterpart of `bgl_store::FaultPlan`. The same plan over the same
/// workload kills, tears, and panics at exactly the same points, so every
/// crash-recovery test reproduces from its seed.
#[derive(Clone, Debug, Default)]
pub struct ExecFaultPlan {
    pub seed: u64,
    kill_at_trained: Option<usize>,
    tear_checkpoint: Option<usize>,
    panic_at: Option<(usize, usize)>,
}

impl ExecFaultPlan {
    /// An empty plan (no faults) with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        ExecFaultPlan { seed, ..ExecFaultPlan::default() }
    }

    /// Simulate trainer death immediately after batch index `k` is
    /// trained: the stop flag rises, in-flight pipeline state and queued
    /// checkpoint writes are lost, and only what already reached disk
    /// survives.
    pub fn kill_at_trained(mut self, k: usize) -> Self {
        self.kill_at_trained = Some(k);
        self
    }

    /// Like [`ExecFaultPlan::kill_at_trained`] with the batch drawn
    /// deterministically from the plan seed in `[lo, hi)`.
    pub fn kill_at_seeded_batch(self, lo: usize, hi: usize) -> Self {
        assert!(lo < hi);
        let k = lo + (splitmix64(self.seed) as usize) % (hi - lo);
        self.kill_at_trained(k)
    }

    /// Tear the `nth` (0-based) checkpoint write of the run: a seeded
    /// prefix of the bytes lands at the final path (crash mid-write), so
    /// the newest on-disk checkpoint fails its checksum on load.
    pub fn tear_checkpoint(mut self, nth: usize) -> Self {
        self.tear_checkpoint = Some(nth);
        self
    }

    /// Panic inside stage `stage` while it processes batch `batch` —
    /// exercises [`crate::ExecError::StagePanic`] attribution.
    pub fn panic_at_stage(mut self, stage: usize, batch: usize) -> Self {
        self.panic_at = Some((stage, batch));
        self
    }

    /// The batch index after which the trainer dies, if any.
    pub fn kill_batch(&self) -> Option<usize> {
        self.kill_at_trained
    }

    /// True when the `nth` (0-based) checkpoint write is scheduled to tear.
    pub fn tears_at(&self, nth: usize) -> bool {
        self.tear_checkpoint == Some(nth)
    }

    /// If the `nth` checkpoint write is scheduled to tear, the seeded
    /// number of bytes that land (strictly less than `len`).
    pub fn torn_keep_bytes(&self, nth: usize, len: usize) -> Option<usize> {
        match self.tear_checkpoint {
            Some(n) if n == nth && len > 0 => {
                Some((splitmix64(self.seed ^ (nth as u64 + 1)) as usize) % len)
            }
            _ => None,
        }
    }

    /// Panic now if the plan schedules a panic for `(stage, batch)`.
    /// Called inside the stage's `catch_unwind` envelope.
    pub(crate) fn maybe_panic(&self, stage: usize, batch: usize) {
        if self.panic_at == Some((stage, batch)) {
            panic!("injected fault: panic at stage {stage} batch {batch}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bgl-ckpt-test-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn sample_ckpt(cursor: u64) -> Checkpoint {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.5, 0.0, 4.25, -0.5]);
        let v = Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        Checkpoint {
            seed: 0xD15EA5E,
            fanouts: vec![5, 5],
            batches_fingerprint: 0xFEED_BEEF,
            num_batches: 20,
            cursor,
            params: vec![1.5, -0.25, 3.75, f32::MIN_POSITIVE, -1.0e20],
            opt: AdamState {
                lr: 1e-3,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: cursor as i32,
                moments: vec![Some((m, v)), None, Some((Matrix::zeros(1, 2), Matrix::zeros(1, 2)))],
            },
            losses: (0..cursor).map(|i| i as f32 * 0.5).collect(),
            train_order: (0..cursor).collect(),
            digests: (0..cursor).map(splitmix64).collect(),
        }
    }

    #[test]
    fn codec_roundtrips() {
        let ckpt = sample_ckpt(6);
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn empty_cursor_roundtrips() {
        let ckpt = sample_ckpt(0);
        assert_eq!(Checkpoint::decode(&ckpt.encode()).unwrap(), ckpt);
    }

    /// The acceptance property, deterministically: a file truncated at
    /// EVERY byte offset short of the full frame must be rejected with a
    /// typed error — never a panic, never a partial decode.
    #[test]
    fn truncation_at_every_offset_is_rejected() {
        let bytes = sample_ckpt(4).encode();
        for cut in 0..bytes.len() {
            let err = Checkpoint::decode(&bytes[..cut])
                .expect_err(&format!("prefix of {cut}/{} bytes must fail", bytes.len()));
            assert!(
                matches!(
                    err,
                    CkptError::Truncated | CkptError::ChecksumMismatch { .. } | CkptError::BadMagic
                ),
                "offset {cut}: unexpected error {err:?}"
            );
        }
        Checkpoint::decode(&bytes).expect("the untruncated frame still decodes");
    }

    #[test]
    fn single_bit_corruption_is_rejected() {
        let bytes = sample_ckpt(3).encode();
        // Flip one bit in a spread of positions, including payload and
        // checksum bytes.
        for pos in [HEADER_LEN, HEADER_LEN + 7, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "bit flip at {pos} must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_ckpt(2).encode();
        bytes.push(0);
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CkptError::Mismatch(_))
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let good = sample_ckpt(1).encode();
        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(Checkpoint::decode(&wrong_magic), Err(CkptError::BadMagic)));

        let mut wrong_version = good.clone();
        wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Version bytes are inside the checksummed region, so recompute the
        // trailer to isolate the version check from the checksum check.
        let len = wrong_version.len();
        let sum = fnv1a(&wrong_version[..len - CHECKSUM_LEN]);
        wrong_version[len - CHECKSUM_LEN..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&wrong_version),
            Err(CkptError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        let a = vec![vec![1u32, 2, 3], vec![4, 5]];
        let b = vec![vec![1u32, 2, 3], vec![5, 4]];
        let c = vec![vec![1u32, 2], vec![3, 4, 5]];
        assert_ne!(fingerprint_batches(&a), fingerprint_batches(&b));
        assert_ne!(fingerprint_batches(&a), fingerprint_batches(&c));
        assert_eq!(fingerprint_batches(&a), fingerprint_batches(&a.clone()));
    }

    #[test]
    fn adam_state_roundtrips_through_optimizer() {
        let mut opt = Adam::new(0.01);
        let mut x = Matrix::from_vec(1, 2, vec![3.0, -1.0]);
        let g = Matrix::from_vec(1, 2, vec![0.5, 0.25]);
        use bgl_tensor::Optimizer;
        opt.step(0, &mut x, &g);
        opt.next_batch();
        let state = AdamState::capture(&opt);
        let mut opt2 = Adam::new(0.9); // wrong lr, will be overwritten
        state.restore_into(&mut opt2);
        assert_eq!(opt2.lr, 0.01);
        assert_eq!(opt2.step_count(), 1);
        let mut xa = x.clone();
        let mut xb = x.clone();
        opt.step(0, &mut xa, &g);
        opt2.step(0, &mut xb, &g);
        assert_eq!(xa.raw(), xb.raw(), "restored optimizer must step identically");
    }

    #[test]
    fn store_writes_atomically_and_retains() {
        let dir = tmp("retain");
        let reg = bgl_obs::Registry::enabled();
        let store =
            CheckpointStore::open(&CheckpointPolicy::new(&dir).retain(2), &reg).unwrap();
        for cursor in [2u64, 4, 6, 8] {
            store.write(&sample_ckpt(cursor)).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 2, "retention must prune to the newest 2");
        let (latest, rejected) = store.load_latest().unwrap();
        assert_eq!(latest.cursor, 8);
        assert_eq!(rejected, 0);
        let writes = reg
            .counters()
            .into_iter()
            .find(|(k, _)| k == "exec.ckpt.writes")
            .map(|(_, v)| v);
        assert_eq!(writes, Some(4));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_newest_write_falls_back_to_previous() {
        let dir = tmp("torn");
        let reg = bgl_obs::Registry::enabled();
        let store =
            CheckpointStore::open(&CheckpointPolicy::new(&dir).retain(3), &reg).unwrap();
        store.write(&sample_ckpt(3)).unwrap();
        store.write(&sample_ckpt(6)).unwrap();
        // The newest write tears partway through.
        let plan = ExecFaultPlan::new(0xBAD).tear_checkpoint(2);
        let bytes = sample_ckpt(9).encode();
        let keep = plan.torn_keep_bytes(2, bytes.len()).unwrap();
        assert!(keep < bytes.len());
        store.write_torn(&sample_ckpt(9), keep).unwrap();

        let (ckpt, rejected) = store.load_latest().unwrap();
        assert_eq!(ckpt.cursor, 6, "must fall back past the torn file");
        assert_eq!(rejected, 1);
        let torn = reg
            .counters()
            .into_iter()
            .find(|(k, _)| k == "exec.ckpt.torn_writes_rejected")
            .map(|(_, v)| v);
        assert_eq!(torn, Some(1));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_store_is_a_typed_error() {
        let dir = tmp("empty");
        let store = CheckpointStore::open(
            &CheckpointPolicy::new(&dir),
            &bgl_obs::Registry::disabled(),
        )
        .unwrap();
        assert!(matches!(store.load_latest(), Err(CkptError::NoCheckpoint)));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fault_plan_is_seed_deterministic() {
        let a = ExecFaultPlan::new(42).kill_at_seeded_batch(4, 16);
        let b = ExecFaultPlan::new(42).kill_at_seeded_batch(4, 16);
        let c = ExecFaultPlan::new(43).kill_at_seeded_batch(4, 16);
        assert_eq!(a.kill_batch(), b.kill_batch());
        let k = a.kill_batch().unwrap();
        assert!((4..16).contains(&k));
        // Different seeds usually differ; at minimum they stay in range.
        assert!((4..16).contains(&c.kill_batch().unwrap()));
        assert_eq!(
            a.torn_keep_bytes(0, 100),
            None,
            "no tear scheduled -> no truncation"
        );
        let t = ExecFaultPlan::new(7).tear_checkpoint(1);
        assert_eq!(t.torn_keep_bytes(0, 100), None);
        let keep = t.torn_keep_bytes(1, 100).unwrap();
        assert!(keep < 100);
        assert_eq!(keep, ExecFaultPlan::new(7).tear_checkpoint(1).torn_keep_bytes(1, 100).unwrap());
    }
}
