//! Turn stage times into a `bgl_sim` tandem pipeline and read off the
//! end-to-end numbers the paper reports: throughput (samples/sec, Figs.
//! 11-13), GPU utilization (Fig. 3), and per-stage breakdowns (Fig. 2).

use crate::profile::StageProfile;
use bgl_sim::pipeline::{PipelineReport, StageSpec, TandemPipeline};
use bgl_sim::secs;

/// Outcome of an end-to-end pipeline simulation.
#[derive(Clone, Debug)]
pub struct SystemReport {
    pub pipeline: PipelineReport,
    /// Mini-batches per second at steady state (aggregate over all GPUs).
    pub batches_per_sec: f64,
    /// Samples per second (`batches_per_sec × batch_size`).
    pub samples_per_sec: f64,
    /// Utilization of the GPU stage — the paper's headline metric.
    pub gpu_utilization: f64,
}

/// Which pipeline stages are *shared* across GPU workers (one instance per
/// cluster: the graph-store CPUs and the worker machine's single NIC)
/// versus *replicated* per worker (each GPU has its own dataloader
/// process, PCIe x16 link, cache shard and compute). Indices follow
/// [`StageProfile::stage_names`].
pub const SHARED_STAGES: [bool; 8] =
    [true, true, true, false, false, false, false, false];

/// Simulate `num_batches` through an 8-stage pipeline with the given
/// per-batch stage times.
///
/// `num_gpus` parallel workers: replicated stages (worker-side CPU, PCIe,
/// cache, GPU — see [`SHARED_STAGES`]) drain the aggregate batch stream W×
/// faster; shared stages (store CPUs, the NIC) keep their aggregate
/// per-batch cost. Systems whose bottleneck is a replicated stage scale
/// until a shared stage binds — the sublinear scaling the paper measures
/// for DGL (≈3x at 8 GPUs) versus BGL's near-linear scaling once the cache
/// removes most shared network traffic (§5.2, "Scalability").
pub fn simulate(
    stage_times: &[f64; 8],
    num_gpus: usize,
    batch_size: usize,
    num_batches: usize,
    buffer_depth: usize,
) -> SystemReport {
    let names = StageProfile::stage_names();
    let gpus = num_gpus.max(1) as f64;
    let stages: Vec<StageSpec> = stage_times
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let t = if SHARED_STAGES[i] { t } else { t / gpus };
            StageSpec::constant(names[i], secs(t.max(0.0)))
        })
        .collect();
    let pipeline = TandemPipeline::with_uniform_buffers(stages, buffer_depth.max(1));
    let report = pipeline.run(num_batches);
    let batches_per_sec = report.steady_throughput();
    // GPU stage utilization: fraction of time the GPU stage is busy. With
    // W workers folded into one stage, this is the mean utilization across
    // the W GPUs.
    let gpu_utilization = report.utilization(7).min(1.0);
    SystemReport {
        samples_per_sec: batches_per_sec * batch_size as f64,
        batches_per_sec,
        gpu_utilization,
        pipeline: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{solve, Capacities, ContentionModel};

    #[test]
    fn dgl_like_profile_shows_low_gpu_utilization() {
        // Free contention + no cache (paper's DGL measurement, Fig. 3:
        // ≤ 15% utilization).
        let p = StageProfile::paper_example();
        let caps = Capacities::paper_testbed();
        let times = ContentionModel::default().stage_times(&p, &caps);
        let rep = simulate(&times, 1, 1000, 200, 2);
        assert!(
            rep.gpu_utilization < 0.25,
            "gpu util {:.2} should be low for the contended profile",
            rep.gpu_utilization
        );
    }

    #[test]
    fn isolated_and_cached_profile_raises_utilization() {
        // With the cache absorbing most of D_II and isolation in place,
        // utilization should rise dramatically.
        let mut p = StageProfile::paper_example();
        p.d_ii *= 0.1; // 90% hit ratio
        p.t1 *= 0.1; // BGL's optimized C++ sampling path + local partitions
        p.t2 *= 0.1;
        p.t3 *= 0.1;
        let caps = Capacities::paper_testbed();
        let a = solve(&p, &caps);
        let rep = simulate(&a.stage_times, 1, 1000, 200, 4);
        assert!(
            rep.gpu_utilization > 0.5,
            "gpu util {:.2} should be high for the optimized profile",
            rep.gpu_utilization
        );
    }

    #[test]
    fn more_gpus_raise_throughput_until_shared_stage_saturates() {
        let p = StageProfile::paper_example();
        let caps = Capacities::paper_testbed();
        let a = solve(&p, &caps);
        let t1 = simulate(&a.stage_times, 1, 1000, 200, 4).batches_per_sec;
        let t8 = simulate(&a.stage_times, 8, 1000, 200, 4).batches_per_sec;
        assert!(t8 >= t1, "throughput must not drop with more GPUs");
        // The shared preprocessing stages cap scaling well below 8x for
        // this preprocessing-bound profile.
        assert!(t8 < t1 * 8.0);
    }

    #[test]
    fn samples_scale_with_batch_size() {
        let p = StageProfile::paper_example();
        let caps = Capacities::paper_testbed();
        let a = solve(&p, &caps);
        let rep = simulate(&a.stage_times, 1, 500, 100, 2);
        assert!((rep.samples_per_sec - rep.batches_per_sec * 500.0).abs() < 1e-6);
    }
}
