//! The real threaded 8-stage pipeline executor (paper Fig. 10, §3.4).
//!
//! Where [`crate::build`] *simulates* the asynchronous training pipeline on
//! virtual time, this module actually runs it: one OS thread pool per
//! stage, bounded channels between stages enforcing backpressure exactly
//! like [`bgl_sim::pipeline::TandemPipeline`]'s finite buffers, and the
//! genuine substrate doing the work — `bgl-sampler` neighbor sampling,
//! `bgl-store` distributed feature fetch (with PR 1's replication / retry /
//! degraded-mode machinery intact), `bgl-cache` two-level lookup/admit,
//! `bgl-graph` subgraph construction and `bgl-gnn` training steps.
//!
//! ## Stage graph
//!
//! ```text
//! order → sample → subgraph → cache-lookup → store-fetch → cache-admit → transfer → train
//!  (1)     (c1)      (c2)       (c4/2)         (c3/2)        (c4/2)       (c3/2)    (1)
//! ```
//!
//! Worker-pool sizes come from a §3.4 [`Allocation`] via
//! [`ExecConfig::scaled_to`]: `c1` drives sampling, `c2` subgraph
//! construction, `c4` splits across the two cache stages and `c3` across
//! worker-side fetch and host→device transfer. `order` and `train` are
//! pinned to one worker each — batch order is produced and consumed
//! sequentially.
//!
//! ## Determinism contract
//!
//! Sampling randomness is keyed by **batch index**, never by worker
//! identity: batch `i` always samples from
//! `StdRng::seed_from_u64(seed ^ hash(i))`, so any interleaving of the
//! sample pool produces the same subgraphs. The train stage holds a
//! reorder buffer and applies batches strictly in index order, so optimizer
//! updates replay identically. [`run_serial`] drives the *same* stage
//! functions inline on one thread; [`run`] must produce bitwise-identical
//! model parameters (the differential test in `tests/exec_runtime.rs`).
//!
//! ## Shutdown protocol
//!
//! Channels close by sender-count (dropping a stage's last sender drains
//! and closes its downstream — the poison-pill equivalent), so a finished
//! epoch drains front to back. [`ExecHandle::stop`] raises a stop flag
//! that every blocked `send`/`recv` observes within one poll tick, so stop
//! under full buffers cannot deadlock. A worker panic is caught, converted
//! into [`ExecError::StagePanic`], and fails the whole pipeline; no thread
//! is ever detached.

use crate::allocator::Allocation;
use crate::checkpoint::{
    fingerprint_batches, AdamState, Checkpoint, CheckpointPolicy, CheckpointStore, CkptError,
    ExecFaultPlan,
};
use bgl_cache::FeatureCacheEngine;
use bgl_gnn::GnnModel;
use bgl_graph::{Csr, InducedSubgraph, NodeId};
use bgl_sampler::{MiniBatch, NeighborSampler};
use bgl_sim::pipeline::{PipelineReport, TandemPipeline};
use bgl_store::{StoreCluster, StoreError};
use bgl_tensor::{Adam, Matrix};
use rand::prelude::*;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The 8 stages, in pipeline order (Fig. 10).
pub const STAGE_NAMES: [&str; 8] = [
    "order",
    "sample",
    "subgraph",
    "cache-lookup",
    "store-fetch",
    "cache-admit",
    "transfer",
    "train",
];

/// Span names per stage (spans want `&'static str`).
const SPAN_NAMES: [&str; 8] = [
    "exec.order",
    "exec.sample",
    "exec.subgraph",
    "exec.cache_lookup",
    "exec.store_fetch",
    "exec.cache_admit",
    "exec.transfer",
    "exec.train",
];

/// How often a blocked channel operation re-checks the stop flag.
const STOP_POLL: Duration = Duration::from_millis(2);

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum ExecError {
    /// A stage worker panicked; the panic is captured, not propagated raw.
    /// `stage_index` is the pipeline position (0..8) of the originating
    /// stage — it must survive propagation so recovery tooling can tell a
    /// sampler crash from a train-step crash.
    StagePanic { stage: &'static str, stage_index: usize, message: String },
    /// The store surfaced an error the fault-tolerance layer could not
    /// absorb (no replication / degradation configured, or budget spent).
    Store { stage: &'static str, error: StoreError },
    /// Checkpoint directory could not be opened, or a resume checkpoint
    /// failed validation against the configured run.
    Checkpoint(CkptError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::StagePanic { stage, stage_index, message } => {
                write!(f, "stage {stage} (index {stage_index}) panicked: {message}")
            }
            ExecError::Store { stage, error } => {
                write!(f, "stage {stage} store error: {error}")
            }
            ExecError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl From<CkptError> for ExecError {
    fn from(e: CkptError) -> Self {
        ExecError::Checkpoint(e)
    }
}

impl std::error::Error for ExecError {}

// ---------------------------------------------------------------------------
// Bounded MPMC channel (std-only: Mutex + Condvar), stop-aware.
// ---------------------------------------------------------------------------

struct ChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct ChanCore<T> {
    state: Mutex<ChanState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    stop: Arc<AtomicBool>,
    depth: bgl_obs::Gauge,
}

pub(crate) struct Sender<T>(Arc<ChanCore<T>>);
pub(crate) struct Receiver<T>(Arc<ChanCore<T>>);

fn channel<T>(
    cap: usize,
    stop: Arc<AtomicBool>,
    depth: bgl_obs::Gauge,
) -> (Sender<T>, Receiver<T>) {
    let core = Arc::new(ChanCore {
        state: Mutex::new(ChanState { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap: cap.max(1),
        stop,
        depth,
    });
    (Sender(Arc::clone(&core)), Receiver(core))
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut g = self.0.state.lock().unwrap();
        g.senders -= 1;
        if g.senders == 0 {
            // Closed: wake receivers so they can observe the drained end.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut g = self.0.state.lock().unwrap();
        g.receivers -= 1;
        if g.receivers == 0 {
            self.0.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocking bounded send. `Err` means the pipeline stopped or every
    /// receiver is gone; either way the caller should wind down.
    fn send(&self, item: T) -> Result<(), ()> {
        let core = &*self.0;
        let mut g = core.state.lock().unwrap();
        loop {
            if core.stop.load(Ordering::Relaxed) || g.receivers == 0 {
                return Err(());
            }
            if g.queue.len() < core.cap {
                g.queue.push_back(item);
                core.depth.add(1);
                core.not_empty.notify_one();
                return Ok(());
            }
            // Backpressure: wait, re-checking the stop flag each tick so a
            // stop under full buffers cannot deadlock.
            let (ng, _) = core.not_full.wait_timeout(g, STOP_POLL).unwrap();
            g = ng;
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive. `None` means the channel is closed-and-drained or
    /// the pipeline stopped.
    fn recv(&self) -> Option<T> {
        let core = &*self.0;
        let mut g = core.state.lock().unwrap();
        loop {
            if let Some(item) = g.queue.pop_front() {
                core.depth.add(-1);
                core.not_full.notify_one();
                return Some(item);
            }
            if core.stop.load(Ordering::Relaxed) || g.senders == 0 {
                return None;
            }
            let (ng, _) = core.not_empty.wait_timeout(g, STOP_POLL).unwrap();
            g = ng;
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration and inputs
// ---------------------------------------------------------------------------

/// Executor knobs.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Per-hop fanouts handed to the neighbor sampler.
    pub fanouts: Vec<usize>,
    /// Base RNG seed; batch `i` samples from a stream keyed by `(seed, i)`.
    pub seed: u64,
    /// Worker-pool size per stage. Index 0 (`order`) and 7 (`train`) are
    /// forced to 1 — they must produce/consume batch indices sequentially.
    pub workers: [usize; 8],
    /// Capacity of every inter-stage buffer (the tandem model's `caps`).
    pub buffer_cap: usize,
    /// Artificial per-batch service-time floor per stage, in nanoseconds.
    /// Zero everywhere in production; tests use it to pin known stage
    /// times for simulator calibration and to force backpressure.
    pub synthetic_stage_ns: [u64; 8],
    /// When set, the train stage snapshots a [`Checkpoint`] every
    /// `every_batches` applied batches and hands it to a dedicated writer
    /// thread — the hot path never touches the filesystem.
    pub ckpt: Option<CheckpointPolicy>,
    /// Seeded chaos: kill/tear/panic injection for crash-recovery tests.
    /// `None` in production.
    pub faults: Option<ExecFaultPlan>,
}

impl ExecConfig {
    /// Single-worker pools, buffer capacity 4, no synthetic delays.
    pub fn new(fanouts: Vec<usize>, seed: u64) -> Self {
        ExecConfig {
            fanouts,
            seed,
            workers: [1; 8],
            buffer_cap: 4,
            synthetic_stage_ns: [0; 8],
            ckpt: None,
            faults: None,
        }
    }

    /// Enable periodic checkpointing under `policy`.
    pub fn with_checkpointing(mut self, policy: CheckpointPolicy) -> Self {
        self.ckpt = Some(policy);
        self
    }

    /// Install a seeded fault plan (crash-recovery chaos tests only).
    pub fn with_faults(mut self, plan: ExecFaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override pool sizes (order/train clamped back to 1, zeros to 1).
    pub fn with_workers(mut self, workers: [usize; 8]) -> Self {
        self.workers = workers.map(|w| w.max(1));
        self.workers[0] = 1;
        self.workers[7] = 1;
        self
    }

    /// Size the pools from a §3.4 allocation, scaled down to `cores`
    /// available host threads: each of `c1`/`c2` maps to its stage, `c4`
    /// splits across the two cache stages, `c3` across store-fetch and
    /// transfer, all proportionally to the allocation's core shares.
    pub fn scaled_to(mut self, alloc: &Allocation, cores: usize) -> Self {
        let budget = cores.max(4) as f64;
        let total = (alloc.c1 + alloc.c2 + alloc.c3 + alloc.c4) as f64;
        let share = |c: usize| (((c as f64 / total) * budget).round() as usize).max(1);
        let (c3, c4) = (share(alloc.c3), share(alloc.c4));
        self.workers = [
            1,
            share(alloc.c1),
            share(alloc.c2),
            (c4 / 2).max(1),
            (c3 / 2).max(1),
            (c4 - c4 / 2).max(1),
            (c3 - c3 / 2).max(1),
            1,
        ];
        self
    }
}

/// Everything one epoch consumes. The executor takes ownership; results
/// (including the trained parameters) come back in the [`ExecReport`].
pub struct EpochTask {
    pub graph: Arc<Csr>,
    pub labels: Arc<Vec<u16>>,
    /// Seed batches in epoch order (the training-node ordering stage's
    /// output, e.g. from `bgl_sampler::TrainOrdering::epoch_batches`).
    pub batches: Vec<Vec<NodeId>>,
    pub cluster: StoreCluster,
    pub cache: FeatureCacheEngine,
    pub model: Box<dyn GnnModel + Send>,
    pub opt: Adam,
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// What a pipeline run measured and produced.
#[derive(Debug)]
pub struct ExecReport {
    /// Batches handed to the pipeline.
    pub batches_requested: usize,
    /// Batches that completed the train stage.
    pub batches_trained: usize,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Per-stage busy nanoseconds (service time only; queue waits excluded).
    pub stage_busy_ns: [u64; 8],
    /// Per-stage completed batch counts.
    pub stage_batches: [u64; 8],
    /// Batch indices in the order the train stage applied them.
    pub train_order: Vec<usize>,
    /// Per-step losses, parallel to `train_order`.
    pub losses: Vec<f32>,
    /// Sampled-subgraph fingerprints indexed by batch index (0 where the
    /// batch never reached the sample stage).
    pub digests: Vec<u64>,
    /// Flattened model parameters after the run.
    pub params: Vec<f32>,
    /// Store-layer reliability counters accumulated during the epoch.
    pub robustness: bgl_sim::network::RobustnessStats,
    /// Cache totals at the end of the run.
    pub cache: bgl_cache::CacheStats,
    /// True when the run ended via [`ExecHandle::stop`] rather than drain.
    pub stopped: bool,
}

impl ExecReport {
    /// End-to-end throughput in batches per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.batches_trained as f64 / s
        }
    }

    /// Mean measured service time per stage in nanoseconds per batch.
    pub fn mean_service_ns(&self) -> [u64; 8] {
        std::array::from_fn(|i| {
            self.stage_busy_ns[i]
                .checked_div(self.stage_batches[i])
                .unwrap_or(0)
        })
    }

    /// Feed the measured per-stage service times back into the tandem-queue
    /// model with the given pool sizes and buffer capacity, and predict the
    /// same run — the simulator-vs-executor validation loop.
    pub fn predict(&self, workers: &[usize; 8], buffer_cap: usize) -> PipelineReport {
        TandemPipeline::from_measured(
            &STAGE_NAMES,
            &self.mean_service_ns(),
            workers,
            buffer_cap,
        )
        .run(self.batches_trained.max(1))
    }
}

// ---------------------------------------------------------------------------
// Shared state and the stage functions (used by BOTH the threaded and the
// serial path — that sharing is what makes the differential test meaningful)
// ---------------------------------------------------------------------------

struct TrainOut {
    params: Vec<f32>,
    losses: Vec<f32>,
    order: Vec<usize>,
}

struct Shared {
    stop: Arc<AtomicBool>,
    error: Mutex<Option<ExecError>>,
    graph: Arc<Csr>,
    labels: Arc<Vec<u16>>,
    sampler: NeighborSampler,
    cluster: Mutex<StoreCluster>,
    cache: Mutex<FeatureCacheEngine>,
    dim: usize,
    seed: u64,
    worker_loc: usize,
    synthetic_ns: [u64; 8],
    faults: Option<ExecFaultPlan>,
    stage_busy_ns: [AtomicU64; 8],
    stage_batches: [AtomicU64; 8],
    digests: Mutex<Vec<u64>>,
    train_out: Mutex<Option<TrainOut>>,
    obs: bgl_obs::Registry,
    ctr_sampled_edges: bgl_obs::Counter,
    ctr_subgraph_edges: bgl_obs::Counter,
    ctr_miss_rows: bgl_obs::Counter,
    ctr_pcie_bytes: bgl_obs::Counter,
    ctr_trained: bgl_obs::Counter,
}

impl Shared {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: &ExecConfig,
        graph: Arc<Csr>,
        labels: Arc<Vec<u16>>,
        num_batches: usize,
        cluster: StoreCluster,
        cache: FeatureCacheEngine,
        obs: bgl_obs::Registry,
        stop: Arc<AtomicBool>,
    ) -> Self {
        let worker_loc = cluster.worker_location();
        let dim = cache.dim();
        Shared {
            stop,
            error: Mutex::new(None),
            graph,
            labels,
            sampler: NeighborSampler::new(cfg.fanouts.clone()).with_metrics(&obs),
            cluster: Mutex::new(cluster),
            cache: Mutex::new(cache),
            dim,
            seed: cfg.seed,
            worker_loc,
            synthetic_ns: cfg.synthetic_stage_ns,
            faults: cfg.faults.clone(),
            stage_busy_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_batches: std::array::from_fn(|_| AtomicU64::new(0)),
            digests: Mutex::new(vec![0; num_batches]),
            train_out: Mutex::new(None),
            ctr_sampled_edges: obs.counter("exec.sample.edges"),
            ctr_subgraph_edges: obs.counter("exec.subgraph.edges"),
            ctr_miss_rows: obs.counter("exec.fetch.miss_rows"),
            ctr_pcie_bytes: obs.counter("exec.pcie.bytes"),
            ctr_trained: obs.counter("exec.batches.trained"),
            obs,
        }
    }

    /// Record the first failure and stop the pipeline.
    fn fail(&self, e: ExecError) {
        let mut slot = self.error.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::Relaxed);
    }

    fn lock_cluster(&self) -> std::sync::MutexGuard<'_, StoreCluster> {
        self.cluster.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, FeatureCacheEngine> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Per-batch RNG stream: keyed by `(seed, batch index)` only, so sampling
/// is identical no matter which worker (or how many) runs the stage.
fn batch_rng(seed: u64, idx: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Every inter-stage item carries its batch index; [`process_one`] reads it
/// for seeded panic injection (tear the pipeline at exactly `(stage, batch)`).
trait Indexed {
    fn index(&self) -> usize;
}

impl Indexed for (usize, Vec<NodeId>) {
    fn index(&self) -> usize {
        self.0
    }
}

macro_rules! impl_indexed {
    ($($t:ty),*) => {
        $(impl Indexed for $t {
            fn index(&self) -> usize {
                self.idx
            }
        })*
    };
}

struct Task {
    idx: usize,
    seeds: Vec<NodeId>,
}

struct Sampled {
    idx: usize,
    mb: MiniBatch,
}

struct Built {
    idx: usize,
    mb: MiniBatch,
    labels: Vec<u16>,
    structure_bytes: u64,
}

struct Looked {
    idx: usize,
    mb: MiniBatch,
    labels: Vec<u16>,
    structure_bytes: u64,
    pending: bgl_cache::PendingFetch,
}

struct Fetched {
    idx: usize,
    mb: MiniBatch,
    labels: Vec<u16>,
    structure_bytes: u64,
    pending: bgl_cache::PendingFetch,
    rows: bgl_graph::FeatureBlock,
}

struct Ready {
    idx: usize,
    mb: MiniBatch,
    labels: Vec<u16>,
    structure_bytes: u64,
    features: Vec<f32>,
}

struct Loaded {
    idx: usize,
    mb: MiniBatch,
    labels: Vec<u16>,
    input: Matrix,
}

impl_indexed!(Task, Sampled, Built, Looked, Fetched, Ready, Loaded);

fn stage_sample(sh: &Shared, t: Task) -> Result<Sampled, ExecError> {
    let mut rng = batch_rng(sh.seed, t.idx);
    let mb = sh.sampler.sample(&sh.graph, &t.seeds, &mut rng);
    sh.ctr_sampled_edges.add(mb.num_edges() as u64);
    let digest = mb.digest();
    sh.digests.lock().unwrap_or_else(|p| p.into_inner())[t.idx] = digest;
    Ok(Sampled { idx: t.idx, mb })
}

fn stage_subgraph(sh: &Shared, s: Sampled) -> Result<Built, ExecError> {
    // Seed labels in seed order (what the loss consumes).
    let labels: Vec<u16> = s.mb.seeds.iter().map(|&v| sh.labels[v as usize]).collect();
    let structure_bytes = s.mb.structure_bytes() as u64;
    // The construct-subgraphs work of Fig. 10 stage 2: reindex the input
    // frontier into a local-ID subgraph (format conversion).
    let sub = InducedSubgraph::induce(&sh.graph, s.mb.input_nodes());
    sh.ctr_subgraph_edges.add(sub.graph.num_edges() as u64);
    Ok(Built { idx: s.idx, mb: s.mb, labels, structure_bytes })
}

fn stage_lookup(sh: &Shared, b: Built) -> Result<Looked, ExecError> {
    let pending = sh.lock_cache().lookup_batch(0, b.mb.input_nodes());
    Ok(Looked {
        idx: b.idx,
        mb: b.mb,
        labels: b.labels,
        structure_bytes: b.structure_bytes,
        pending,
    })
}

fn stage_fetch(sh: &Shared, l: Looked) -> Result<Fetched, ExecError> {
    let rows = if l.pending.is_complete() {
        bgl_graph::FeatureBlock::new(sh.dim, 0)
    } else {
        let missing = l.pending.missing_keys();
        let (rows, _elapsed) = sh
            .lock_cluster()
            .fetch_features(missing, sh.worker_loc)
            .map_err(|error| ExecError::Store { stage: STAGE_NAMES[4], error })?;
        sh.ctr_miss_rows.add(missing.len() as u64);
        rows
    };
    Ok(Fetched {
        idx: l.idx,
        mb: l.mb,
        labels: l.labels,
        structure_bytes: l.structure_bytes,
        pending: l.pending,
        rows,
    })
}

fn stage_admit(sh: &Shared, f: Fetched) -> Result<Ready, ExecError> {
    let res = sh.lock_cache().complete_batch(f.pending, &f.rows);
    Ok(Ready {
        idx: f.idx,
        mb: f.mb,
        labels: f.labels,
        structure_bytes: f.structure_bytes,
        features: res.features,
    })
}

fn stage_transfer(sh: &Shared, r: Ready) -> Result<Loaded, ExecError> {
    let rows = r.features.len() / sh.dim;
    let feature_bytes = (r.features.len() * std::mem::size_of::<f32>()) as u64;
    // The host→device copy of Fig. 10 stages 5/7: materialize the training
    // input in its final layout and account both PCIe flows.
    let input = Matrix::from_vec(rows, sh.dim, r.features);
    sh.ctr_pcie_bytes.add(feature_bytes + r.structure_bytes);
    Ok(Loaded { idx: r.idx, mb: r.mb, labels: r.labels, input })
}

/// Run one item through stage `stage`: synthetic floor, span, busy-time
/// accounting, panic capture (including injected panics from a fault plan).
fn process_one<I: Indexed, O>(
    stage: usize,
    sh: &Shared,
    item: I,
    f: impl FnOnce(&Shared, I) -> Result<O, ExecError>,
) -> Result<O, ExecError> {
    let idx = item.index();
    let span = sh.obs.span(SPAN_NAMES[stage]);
    let t0 = Instant::now();
    if sh.synthetic_ns[stage] > 0 {
        std::thread::sleep(Duration::from_nanos(sh.synthetic_ns[stage]));
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = &sh.faults {
            plan.maybe_panic(stage, idx);
        }
        f(sh, item)
    }));
    sh.stage_busy_ns[stage].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    span.end();
    match result {
        Ok(Ok(out)) => {
            sh.stage_batches[stage].fetch_add(1, Ordering::Relaxed);
            Ok(out)
        }
        Ok(Err(e)) => Err(e),
        Err(payload) => Err(ExecError::StagePanic {
            stage: STAGE_NAMES[stage],
            stage_index: stage,
            message: panic_message(payload),
        }),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn train_one(
    sh: &Shared,
    item: Loaded,
    model: &mut (dyn GnnModel + Send),
    opt: &mut Adam,
) -> Result<(usize, f32), ExecError> {
    let (loss, _acc) = model.train_step(&item.mb, &item.input, &item.labels, opt);
    sh.ctr_trained.incr();
    Ok((item.idx, loss))
}

// ---------------------------------------------------------------------------
// Threaded executor
// ---------------------------------------------------------------------------

/// A running pipeline. Call [`ExecHandle::join`] to wait for drain (or
/// failure), [`ExecHandle::stop`] for early shutdown.
pub struct ExecHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    started: Instant,
    batches_requested: usize,
}

impl ExecHandle {
    /// Raise the stop flag: every blocked channel operation observes it
    /// within one poll tick and unwinds, full buffers or not.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Wait for every stage thread, then assemble the report. Returns the
    /// first stage failure if the pipeline died.
    pub fn join(self) -> Result<ExecReport, ExecError> {
        for t in self.threads {
            // Worker bodies catch panics; a join error here would mean the
            // harness itself tore down, which fail() has already recorded.
            let _ = t.join();
        }
        let wall = self.started.elapsed();
        finish(self.shared, wall, self.batches_requested)
    }
}

fn finish(
    shared: Arc<Shared>,
    wall: Duration,
    batches_requested: usize,
) -> Result<ExecReport, ExecError> {
    if let Some(e) = shared.error.lock().unwrap_or_else(|p| p.into_inner()).take() {
        return Err(e);
    }
    let sh = &shared;
    let stopped = sh.stop.load(Ordering::Relaxed);
    let train = sh
        .train_out
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .take()
        .unwrap_or(TrainOut { params: Vec::new(), losses: Vec::new(), order: Vec::new() });
    let robustness = sh.lock_cluster().robustness;
    let cache = *sh.lock_cache().stats();
    // Surface the store's degraded-mode / reliability counters through the
    // executor's own namespace (satellite: PR 1 counters under `exec.*`).
    sh.obs.counter("exec.store.retries").add(robustness.retries);
    sh.obs.counter("exec.store.failovers").add(robustness.failovers);
    sh.obs.counter("exec.store.degraded_batches").add(robustness.degraded_batches);
    sh.obs.counter("exec.store.degraded_rows").add(robustness.degraded_rows);
    sh.obs.counter("exec.store.breaker_opens").add(robustness.breaker_opens);
    let report = ExecReport {
        batches_requested,
        batches_trained: train.order.len(),
        wall,
        stage_busy_ns: std::array::from_fn(|i| sh.stage_busy_ns[i].load(Ordering::Relaxed)),
        stage_batches: std::array::from_fn(|i| sh.stage_batches[i].load(Ordering::Relaxed)),
        train_order: train.order,
        losses: train.losses,
        digests: sh.digests.lock().unwrap_or_else(|p| p.into_inner()).clone(),
        params: train.params,
        robustness,
        cache,
        stopped,
    };
    Ok(report)
}

fn spawn_pool<I: Indexed + Send + 'static, O: Send + 'static>(
    stage: usize,
    workers: usize,
    sh: &Arc<Shared>,
    rx: Receiver<I>,
    tx: Sender<O>,
    f: fn(&Shared, I) -> Result<O, ExecError>,
    threads: &mut Vec<JoinHandle<()>>,
) {
    for w in 0..workers.max(1) {
        let sh = Arc::clone(sh);
        let rx = rx.clone();
        let tx = tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("bgl-exec-{}-{}", STAGE_NAMES[stage], w))
            .spawn(move || {
                while let Some(item) = rx.recv() {
                    match process_one(stage, &sh, item, f) {
                        Ok(out) => {
                            if tx.send(out).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            sh.fail(e);
                            break;
                        }
                    }
                }
            })
            .expect("spawn stage worker");
        threads.push(handle);
    }
    // The original rx/tx drop here; channel sender/receiver counts now
    // reflect exactly the pool's workers.
}

/// Check that `ckpt` was produced by a run identical to the one `cfg` and
/// the task describe — same seed, fanouts, batch plan and model shape.
/// Resuming a mismatched checkpoint would silently break the determinism
/// contract, so every divergence is a typed error.
fn validate_resume(
    cfg: &ExecConfig,
    ckpt: &Checkpoint,
    fingerprint: u64,
    num_batches: usize,
    param_len: usize,
) -> Result<(), CkptError> {
    if ckpt.seed != cfg.seed {
        return Err(CkptError::Mismatch(format!(
            "checkpoint seed {} != config seed {}",
            ckpt.seed, cfg.seed
        )));
    }
    if ckpt.fanouts != cfg.fanouts {
        return Err(CkptError::Mismatch(format!(
            "checkpoint fanouts {:?} != config fanouts {:?}",
            ckpt.fanouts, cfg.fanouts
        )));
    }
    if ckpt.batches_fingerprint != fingerprint {
        return Err(CkptError::Mismatch(
            "checkpoint batch plan differs from the task's seed batches".to_string(),
        ));
    }
    if ckpt.num_batches as usize != num_batches {
        return Err(CkptError::Mismatch(format!(
            "checkpoint expects {} batches, task has {}",
            ckpt.num_batches, num_batches
        )));
    }
    if ckpt.params.len() != param_len {
        return Err(CkptError::Mismatch(format!(
            "checkpoint has {} params, model has {}",
            ckpt.params.len(),
            param_len
        )));
    }
    if ckpt.cursor as usize > num_batches {
        return Err(CkptError::Mismatch(format!(
            "checkpoint cursor {} beyond {} batches",
            ckpt.cursor, num_batches
        )));
    }
    Ok(())
}

/// Start the threaded pipeline on `task`. Worker pools, buffer bounds and
/// synthetic delays come from `cfg`; metrics and spans go to `reg`.
///
/// Panics if a configured checkpoint directory cannot be opened — a fresh
/// spawn has no other failure mode; use [`spawn_resumed`] for the fallible
/// resume path.
pub fn spawn(cfg: &ExecConfig, task: EpochTask, reg: &bgl_obs::Registry) -> ExecHandle {
    spawn_inner(cfg, task, reg, None).expect("open checkpoint store")
}

/// Start the pipeline mid-epoch from `ckpt`: model parameters and Adam
/// state are restored, the order stage skips the first `ckpt.cursor`
/// batches, and the train stage's reorder buffer resumes at that cursor
/// with the checkpointed losses/order/digests already in place — the
/// continuation is bitwise-identical to never having crashed.
pub fn spawn_resumed(
    cfg: &ExecConfig,
    task: EpochTask,
    ckpt: &Checkpoint,
    reg: &bgl_obs::Registry,
) -> Result<ExecHandle, CkptError> {
    spawn_inner(cfg, task, reg, Some(ckpt))
}

/// [`spawn_resumed`] + join: restore from `ckpt`, run the remainder of the
/// epoch, return the completed report.
pub fn resume_from(
    cfg: &ExecConfig,
    task: EpochTask,
    ckpt: &Checkpoint,
    reg: &bgl_obs::Registry,
) -> Result<ExecReport, ExecError> {
    spawn_resumed(cfg, task, ckpt, reg)?.join()
}

fn spawn_inner(
    cfg: &ExecConfig,
    task: EpochTask,
    reg: &bgl_obs::Registry,
    resume: Option<&Checkpoint>,
) -> Result<ExecHandle, CkptError> {
    let stop = Arc::new(AtomicBool::new(false));
    let EpochTask { graph, labels, batches, cluster, cache, mut model, mut opt } = task;
    let batches_requested = batches.len();
    let fingerprint = fingerprint_batches(&batches);

    // Resume: restore parameters + optimizer, and precompute the state the
    // train stage starts from.
    let mut start_cursor = 0usize;
    let mut preload_losses: Vec<f32> = Vec::new();
    let mut preload_order: Vec<usize> = Vec::new();
    let mut preload_digests: Vec<u64> = Vec::new();
    if let Some(ckpt) = resume {
        validate_resume(cfg, ckpt, fingerprint, batches_requested, model.param_vec().len())?;
        model.load_param_vec(&ckpt.params);
        ckpt.opt.restore_into(&mut opt);
        start_cursor = ckpt.cursor as usize;
        preload_losses = ckpt.losses.clone();
        preload_order = ckpt.train_order.iter().map(|&i| i as usize).collect();
        preload_digests = ckpt.digests.clone();
        reg.counter("exec.ckpt.resumes").incr();
    }

    let sh = Arc::new(Shared::new(
        cfg,
        graph,
        labels,
        batches_requested,
        cluster,
        cache,
        reg.clone(),
        Arc::clone(&stop),
    ));
    if !preload_digests.is_empty() {
        sh.digests.lock().unwrap_or_else(|p| p.into_inner())[..start_cursor]
            .copy_from_slice(&preload_digests);
    }
    let cap = cfg.buffer_cap.max(1);
    let workers = {
        let mut w = cfg.workers.map(|x| x.max(1));
        w[0] = 1;
        w[7] = 1;
        w
    };
    let gauge = |name: &str| reg.gauge(&format!("exec.queue.{name}.depth"));

    let (tx_sample, rx_sample) = channel::<Task>(cap, Arc::clone(&stop), gauge("sample"));
    let (tx_sub, rx_sub) = channel::<Sampled>(cap, Arc::clone(&stop), gauge("subgraph"));
    let (tx_look, rx_look) = channel::<Built>(cap, Arc::clone(&stop), gauge("cache-lookup"));
    let (tx_fetch, rx_fetch) = channel::<Looked>(cap, Arc::clone(&stop), gauge("store-fetch"));
    let (tx_admit, rx_admit) = channel::<Fetched>(cap, Arc::clone(&stop), gauge("cache-admit"));
    let (tx_xfer, rx_xfer) = channel::<Ready>(cap, Arc::clone(&stop), gauge("transfer"));
    let (tx_train, rx_train) = channel::<Loaded>(cap, Arc::clone(&stop), gauge("train"));

    let mut threads = Vec::new();

    // Dedicated checkpoint writer: the train stage enqueues snapshots and
    // returns to the hot path immediately; all filesystem work (encode,
    // temp file, fsync, rename, prune) happens here. Opening the store is
    // the only fallible step of a fresh spawn, so it runs before any stage
    // thread starts.
    let ckpt_tx: Option<Sender<Checkpoint>> = if let Some(policy) = &cfg.ckpt {
        let store = CheckpointStore::open(policy, reg)?;
        let (tx, rx) = channel::<Checkpoint>(4, Arc::clone(&stop), gauge("ckpt"));
        let faults = cfg.faults.clone();
        let ctr_errors = reg.counter("exec.ckpt.write_errors");
        threads.push(
            std::thread::Builder::new()
                .name("bgl-exec-ckpt".to_string())
                .spawn(move || {
                    let mut nth = 0usize;
                    while let Some(ckpt) = rx.recv() {
                        // Seeded chaos: the nth write may be torn — a
                        // truncated file left at the final path, modeling a
                        // crash mid-write without atomic rename.
                        let torn = faults
                            .as_ref()
                            .filter(|p| p.tears_at(nth))
                            .and_then(|p| p.torn_keep_bytes(nth, ckpt.encode().len()));
                        let res = match torn {
                            Some(keep) => store.write_torn(&ckpt, keep).map(|_| ()),
                            None => store.write(&ckpt).map(|_| ()),
                        };
                        if res.is_err() {
                            ctr_errors.incr();
                        }
                        nth += 1;
                    }
                })
                .expect("spawn checkpoint writer"),
        );
        Some(tx)
    } else {
        None
    };

    // Stage 0 — order (source): emit the precomputed seed batches in epoch
    // order, skipping any prefix a resume checkpoint already applied. Its
    // "service" is just the ordering bookkeeping (plus any synthetic
    // floor); channel blocking time is not counted as busy.
    {
        let sh = Arc::clone(&sh);
        let tx = tx_sample.clone();
        threads.push(
            std::thread::Builder::new()
                .name("bgl-exec-order".to_string())
                .spawn(move || {
                    for (idx, seeds) in batches.into_iter().enumerate().skip(start_cursor) {
                        match process_one(0, &sh, (idx, seeds), |_, (idx, seeds)| {
                            Ok(Task { idx, seeds })
                        }) {
                            Ok(t) => {
                                if tx.send(t).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                sh.fail(e);
                                break;
                            }
                        }
                    }
                })
                .expect("spawn order stage"),
        );
        drop(tx_sample);
    }

    spawn_pool(1, workers[1], &sh, rx_sample, tx_sub, stage_sample, &mut threads);
    spawn_pool(2, workers[2], &sh, rx_sub, tx_look, stage_subgraph, &mut threads);
    spawn_pool(3, workers[3], &sh, rx_look, tx_fetch, stage_lookup, &mut threads);
    spawn_pool(4, workers[4], &sh, rx_fetch, tx_admit, stage_fetch, &mut threads);
    spawn_pool(5, workers[5], &sh, rx_admit, tx_xfer, stage_admit, &mut threads);
    spawn_pool(6, workers[6], &sh, rx_xfer, tx_train, stage_transfer, &mut threads);

    // Stage 7 — train (sink): a reorder buffer delivers batches to the
    // model strictly in index order, so the optimizer trajectory is
    // identical to the serial path no matter how stages interleave. The
    // buffer only absorbs out-of-order *skew* (bounded by total pipeline
    // capacity): while the next expected index is missing we block on
    // recv, so a slow train stage still backpressures upstream.
    //
    // On a resume the buffer starts at the checkpoint cursor with the
    // checkpointed losses/order preloaded; checkpoint snapshots are taken
    // here (the only thread with the model and optimizer) and handed to
    // the writer thread — snapshotting is a memory copy, never I/O.
    {
        let sh = Arc::clone(&sh);
        let mut model = model;
        let mut opt = opt;
        let every = cfg.ckpt.as_ref().map(|p| p.every_batches.max(1));
        let kill_at = cfg.faults.as_ref().and_then(|p| p.kill_batch());
        let seed = cfg.seed;
        let fanouts = cfg.fanouts.clone();
        threads.push(
            std::thread::Builder::new()
                .name("bgl-exec-train".to_string())
                .spawn(move || {
                    let mut pending: BTreeMap<usize, Loaded> = BTreeMap::new();
                    let mut next = start_cursor;
                    let mut losses = preload_losses;
                    let mut order = preload_order;
                    'outer: loop {
                        while let Some(item) = pending.remove(&next) {
                            match process_one(7, &sh, item, |sh, it| {
                                train_one(sh, it, model.as_mut(), &mut opt)
                            }) {
                                Ok((idx, loss)) => {
                                    order.push(idx);
                                    losses.push(loss);
                                    next += 1;
                                    if let (Some(every), Some(tx)) = (every, ckpt_tx.as_ref()) {
                                        if next.is_multiple_of(every) {
                                            let digests = sh
                                                .digests
                                                .lock()
                                                .unwrap_or_else(|p| p.into_inner())[..next]
                                                .to_vec();
                                            let snap = Checkpoint {
                                                seed,
                                                fanouts: fanouts.clone(),
                                                batches_fingerprint: fingerprint,
                                                num_batches: batches_requested as u64,
                                                cursor: next as u64,
                                                params: model.param_vec(),
                                                opt: AdamState::capture(&opt),
                                                losses: losses.clone(),
                                                train_order: order
                                                    .iter()
                                                    .map(|&i| i as u64)
                                                    .collect(),
                                                digests,
                                            };
                                            // A failed send means the pipeline
                                            // is stopping; the writer drains
                                            // whatever was already queued.
                                            let _ = tx.send(snap);
                                        }
                                    }
                                    if kill_at == Some(idx) {
                                        // Injected crash: raise the stop flag
                                        // exactly as a dying process would
                                        // leave the pipeline — no error is
                                        // recorded, the report says `stopped`.
                                        sh.stop.store(true, Ordering::Relaxed);
                                        break 'outer;
                                    }
                                }
                                Err(e) => {
                                    sh.fail(e);
                                    break 'outer;
                                }
                            }
                        }
                        match rx_train.recv() {
                            Some(item) => {
                                pending.insert(item.idx, item);
                            }
                            None => break,
                        }
                    }
                    // Drop our checkpoint sender so the writer thread sees
                    // the channel close and drains.
                    drop(ckpt_tx);
                    *sh.train_out.lock().unwrap_or_else(|p| p.into_inner()) =
                        Some(TrainOut { params: model.param_vec(), losses, order });
                })
                .expect("spawn train stage"),
        );
    }

    Ok(ExecHandle { shared: sh, threads, started: Instant::now(), batches_requested })
}

/// Run the threaded pipeline to completion.
pub fn run(cfg: &ExecConfig, task: EpochTask, reg: &bgl_obs::Registry) -> Result<ExecReport, ExecError> {
    spawn(cfg, task, reg).join()
}

/// The all-stages-on-one-thread baseline: the *same* stage functions, the
/// same accounting, run inline in batch order. This is both the §3.4
/// no-pipelining baseline and the reference side of the differential test.
///
/// Fault-plan kill/panic injection applies here too (the chaos tests
/// compare both paths); checkpoint *writing* does not — the serial path is
/// the reference trajectory, not a recoverable production run.
pub fn run_serial(
    cfg: &ExecConfig,
    task: EpochTask,
    reg: &bgl_obs::Registry,
) -> Result<ExecReport, ExecError> {
    let stop = Arc::new(AtomicBool::new(false));
    let EpochTask { graph, labels, batches, cluster, cache, mut model, mut opt } = task;
    let batches_requested = batches.len();
    let sh = Arc::new(Shared::new(
        cfg,
        graph,
        labels,
        batches_requested,
        cluster,
        cache,
        reg.clone(),
        Arc::clone(&stop),
    ));
    let started = Instant::now();
    let mut losses = Vec::new();
    let mut order = Vec::new();
    let mut failure = None;
    let kill_at = cfg.faults.as_ref().and_then(|p| p.kill_batch());

    for (idx, seeds) in batches.into_iter().enumerate() {
        let step = (|| -> Result<(usize, f32), ExecError> {
            let t = process_one(0, &sh, (idx, seeds), |_, (idx, seeds)| Ok(Task { idx, seeds }))?;
            let s = process_one(1, &sh, t, stage_sample)?;
            let b = process_one(2, &sh, s, stage_subgraph)?;
            let l = process_one(3, &sh, b, stage_lookup)?;
            let f = process_one(4, &sh, l, stage_fetch)?;
            let r = process_one(5, &sh, f, stage_admit)?;
            let loaded = process_one(6, &sh, r, stage_transfer)?;
            process_one(7, &sh, loaded, |sh, it| train_one(sh, it, model.as_mut(), &mut opt))
        })();
        match step {
            Ok((i, loss)) => {
                order.push(i);
                losses.push(loss);
                if kill_at == Some(i) {
                    sh.stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    *sh.train_out.lock().unwrap_or_else(|p| p.into_inner()) =
        Some(TrainOut { params: model.param_vec(), losses, order });
    if let Some(e) = failure {
        sh.fail(e);
    }
    finish(sh, started.elapsed(), batches_requested)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_gauge() -> bgl_obs::Gauge {
        bgl_obs::Gauge::noop()
    }

    #[test]
    fn channel_round_trips_in_order() {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<usize>(2, stop, test_gauge());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        drop(tx);
        assert_eq!(rx.recv(), None, "closed channel drains then ends");
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<usize>(1, stop, test_gauge());
        tx.send(0).unwrap();
        let t = std::thread::spawn(move || {
            // Blocks until the receiver drains one slot.
            tx.send(1).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "send must block on a full buffer");
        assert_eq!(rx.recv(), Some(0));
        t.join().unwrap();
        assert_eq!(rx.recv(), Some(1));
    }

    #[test]
    fn stop_wakes_blocked_sender() {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, _rx) = channel::<usize>(1, Arc::clone(&stop), test_gauge());
        tx.send(0).unwrap();
        let t = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(10));
        stop.store(true, Ordering::Relaxed);
        let r = t.join().unwrap();
        assert!(r.is_err(), "stop must fail the blocked send");
    }

    #[test]
    fn receiver_drop_fails_send() {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<usize>(1, stop, test_gauge());
        drop(rx);
        assert!(tx.send(7).is_err(), "no receivers -> send errors");
    }

    #[test]
    fn batch_rng_is_keyed_by_index_only() {
        let mut a = batch_rng(42, 3);
        let mut b = batch_rng(42, 3);
        let mut c = batch_rng(42, 4);
        let (xa, xb, xc): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn scaled_allocation_keeps_order_and_train_single() {
        let alloc = crate::allocator::solve(
            &crate::StageProfile::paper_example(),
            &crate::allocator::Capacities::paper_testbed(),
        );
        let cfg = ExecConfig::new(vec![5, 5], 7).scaled_to(&alloc, 8);
        assert_eq!(cfg.workers[0], 1);
        assert_eq!(cfg.workers[7], 1);
        assert!(cfg.workers.iter().all(|&w| w >= 1));
        // The sampling pool should get a material share on 8 cores.
        assert!(cfg.workers[1] >= 1);
    }
}
