//! The profiling-based resource allocator (§3.4) and the free-contention
//! baseline it is compared against (Fig. 15).

use crate::profile::StageProfile;
use serde::{Deserialize, Serialize};

/// A concrete resource assignment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Allocation {
    pub c1: usize,
    pub c2: usize,
    pub c3: usize,
    pub c4: usize,
    pub b_i: usize,
    pub b_ii: usize,
    /// Resulting per-stage times (seconds/batch).
    pub stage_times: [f64; 8],
    /// The pipeline's bottleneck time, `max(stage_times)`.
    pub bottleneck: f64,
}

/// Machine capacities for the optimizer's constraints.
#[derive(Clone, Copy, Debug)]
pub struct Capacities {
    /// Graph-store server CPU cores (paper: 96).
    pub c_gs: usize,
    /// Worker-machine CPU cores (paper: 96).
    pub c_wm: usize,
    /// PCIe bandwidth in integer shares.
    pub b_pcie: usize,
    /// Bytes/second of one PCIe share.
    pub pcie_unit: f64,
}

impl Capacities {
    /// The paper's testbed: 96 + 96 cores, PCIe 3.0 x16 ≈ 12.8 GB/s as 12
    /// shares of ~1.06 GB/s.
    pub fn paper_testbed() -> Self {
        Capacities { c_gs: 96, c_wm: 96, b_pcie: 12, pcie_unit: 12.8e9 / 12.0 }
    }
}

/// Solve the min-max allocation by brute force. The three resource pairs
/// appear in disjoint objective terms, so each pair is swept independently
/// — `O(C_gs + C_wm + B_pcie)` sweeps here (the paper quotes the quadratic
/// bound of the naive joint sweep; independence makes it linear without
/// changing the optimum).
pub fn solve(profile: &StageProfile, caps: &Capacities) -> Allocation {
    // Pair 1: min max(T1/c1, T2/c2), c1 + c2 = C_gs.
    let (mut c1, mut best1) = (1usize, f64::INFINITY);
    for c in 1..caps.c_gs {
        let m = (profile.t1 / c as f64).max(profile.t2 / (caps.c_gs - c) as f64);
        if m < best1 {
            best1 = m;
            c1 = c;
        }
    }
    let c2 = caps.c_gs - c1;

    // Pair 2: min max(T3/c3, f(c4)), c3 + c4 = C_wm. f() is non-monotone,
    // so sweep the full range.
    let (mut c3, mut best2) = (1usize, f64::INFINITY);
    for c in 1..caps.c_wm {
        let m = (profile.t3 / c as f64).max(profile.cache_time(caps.c_wm - c));
        if m < best2 {
            best2 = m;
            c3 = c;
        }
    }
    let c4 = caps.c_wm - c3;

    // Pair 3: min max(D_I/b_I, D_II/b_II), b_I + b_II = B_pcie.
    let (mut b_i, mut best3) = (1usize, f64::INFINITY);
    for b in 1..caps.b_pcie {
        let m = (profile.d_i / (b as f64 * caps.pcie_unit))
            .max(profile.d_ii / ((caps.b_pcie - b) as f64 * caps.pcie_unit));
        if m < best3 {
            best3 = m;
            b_i = b;
        }
    }
    let b_ii = caps.b_pcie - b_i;

    let stage_times = profile.stage_times(c1, c2, c3, c4, b_i, b_ii, caps.pcie_unit);
    let bottleneck = stage_times.iter().cloned().fold(0.0, f64::max);
    Allocation { c1, c2, c3, c4, b_i, b_ii, stage_times, bottleneck }
}

/// How stages behave when nothing is isolated (the "BGL w/o isolation" /
/// DGL / Euler configuration).
#[derive(Clone, Copy, Debug)]
pub struct ContentionModel {
    /// Multiplicative oversubscription penalty when `n` CPU stages share
    /// one machine's cores: each stage sees `cores / n` effective cores,
    /// times this inefficiency factor (thread churn, cache thrash).
    pub oversubscription: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        // Calibrated so "BGL w/o isolation" loses up to ~2.7x (Fig. 15).
        ContentionModel { oversubscription: 1.6 }
    }
}

impl ContentionModel {
    /// Stage times under free competition: the two store stages split the
    /// store cores, the two worker stages split the worker cores (each
    /// *attempting* to use every core — so the cache stage runs past its
    /// scaling knee and pays the degradation), and both PCIe flows halve
    /// the bus.
    pub fn stage_times(&self, profile: &StageProfile, caps: &Capacities) -> [f64; 8] {
        let gs_eff = ((caps.c_gs as f64 / 2.0) / self.oversubscription).max(1.0);
        let wm_eff = ((caps.c_wm as f64 / 2.0) / self.oversubscription).max(1.0);
        // The cache stage spawns threads on every worker core (what OpenMP
        // does by default), so it is charged f(C_wm) — past the knee.
        let cache = profile.cache_time(caps.c_wm) * self.oversubscription;
        let half_bus = caps.b_pcie as f64 / 2.0 * caps.pcie_unit;
        [
            profile.t1 / gs_eff,
            profile.t2 / gs_eff,
            profile.t_net,
            profile.t3 / wm_eff,
            profile.d_i / half_bus,
            cache,
            profile.d_ii / half_bus,
            profile.t_gpu,
        ]
    }

    /// Bottleneck time under free competition.
    pub fn bottleneck(&self, profile: &StageProfile, caps: &Capacities) -> f64 {
        self.stage_times(profile, caps)
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_respects_constraints() {
        let p = StageProfile::paper_example();
        let caps = Capacities::paper_testbed();
        let a = solve(&p, &caps);
        assert!(a.c1 + a.c2 <= caps.c_gs);
        assert!(a.c3 + a.c4 <= caps.c_wm);
        assert!(a.b_i + a.b_ii <= caps.b_pcie);
        assert!(a.c1 >= 1 && a.c2 >= 1 && a.c3 >= 1 && a.c4 >= 1);
        assert!(a.bottleneck > 0.0);
    }

    #[test]
    fn solver_balances_cpu_pair_by_work() {
        // T1/T2 = 1/2 -> c2 ≈ 2·c1.
        let mut p = StageProfile::paper_example();
        p.t1 = 0.3;
        p.t2 = 0.6;
        let caps = Capacities::paper_testbed();
        let a = solve(&p, &caps);
        let ratio = a.c2 as f64 / a.c1 as f64;
        assert!((1.6..2.6).contains(&ratio), "c2/c1 = {}", ratio);
        // At the optimum the pair is balanced.
        assert!((a.stage_times[0] - a.stage_times[1]).abs() / a.stage_times[0] < 0.2);
    }

    #[test]
    fn solver_keeps_cache_at_its_knee() {
        let p = StageProfile::paper_example();
        let caps = Capacities::paper_testbed();
        let a = solve(&p, &caps);
        // Giving the cache stage far more cores than the knee only hurts;
        // the solver should not overshoot it by much.
        assert!(
            a.c4 <= p.cache_knee + 16,
            "c4 = {} far beyond knee {}",
            a.c4,
            p.cache_knee
        );
    }

    #[test]
    fn pcie_split_favors_features() {
        // D_II (195 MB features) dwarfs D_I (5 MB structure).
        let p = StageProfile::paper_example();
        let caps = Capacities::paper_testbed();
        let a = solve(&p, &caps);
        assert!(a.b_ii > a.b_i, "features need the wider share: {:?}", a);
    }

    #[test]
    fn isolation_beats_free_contention() {
        let p = StageProfile::paper_example();
        let caps = Capacities::paper_testbed();
        let isolated = solve(&p, &caps).bottleneck;
        let contended = ContentionModel::default().bottleneck(&p, &caps);
        let speedup = contended / isolated;
        assert!(
            speedup > 1.3,
            "isolation speedup {:.2} should be material",
            speedup
        );
        assert!(speedup < 4.0, "speedup {:.2} beyond the paper's ~2.7x", speedup);
    }

    #[test]
    fn optimum_not_worse_than_any_probe_allocation() {
        let p = StageProfile::paper_example();
        let caps = Capacities::paper_testbed();
        let a = solve(&p, &caps);
        for c1 in [1usize, 24, 48, 72, 95] {
            for c3 in [1usize, 24, 48, 72, 95] {
                for b_i in [1usize, 3, 6, 9, 11] {
                    let t = p.stage_times(
                        c1,
                        caps.c_gs - c1,
                        c3,
                        caps.c_wm - c3,
                        b_i,
                        caps.b_pcie - b_i,
                        caps.pcie_unit,
                    );
                    let m = t.iter().cloned().fold(0.0, f64::max);
                    assert!(
                        a.bottleneck <= m + 1e-12,
                        "solver missed a better allocation: {} < {}",
                        m,
                        a.bottleneck
                    );
                }
            }
        }
    }
}
