//! Property-based tests for the checkpoint codec: for *arbitrary* model
//! shapes and training prefixes, encode/decode is the identity, and no
//! truncation, bit flip, or header forgery survives decoding.

use bgl_exec::{AdamState, Checkpoint, CkptError};
use bgl_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=4, 1usize..=5).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn arb_moments() -> impl Strategy<Value = Vec<Option<(Matrix, Matrix)>>> {
    proptest::collection::vec(
        proptest::option::of((arb_matrix(), arb_matrix())),
        0..4,
    )
}

/// A well-formed checkpoint: cursor ≤ num_batches, the per-batch prefixes
/// exactly `cursor` long, train order the identity prefix — the shape the
/// executor always produces and `decode` insists on.
fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        any::<u64>(),
        proptest::collection::vec(1usize..=16, 0..5),
        any::<u64>(),
        0u64..32,
    )
        .prop_flat_map(|(seed, fanouts, fingerprint, cursor)| {
            (
                Just(seed),
                Just(fanouts),
                Just(fingerprint),
                Just(cursor),
                cursor..=cursor + 32,
                proptest::collection::vec(-1e6f32..1e6, 0..64),
                arb_moments(),
                (-1e3f32..1e3, 0.0f32..1.0, 0.0f32..1.0, 0i32..1000),
                proptest::collection::vec(-1e6f32..1e6, cursor as usize),
                proptest::collection::vec(any::<u64>(), cursor as usize),
            )
        })
        .prop_map(
            |(seed, fanouts, fingerprint, cursor, num_batches, params, moments, hp, losses, digests)| {
                let (lr, beta1, beta2, t) = hp;
                Checkpoint {
                    seed,
                    fanouts,
                    batches_fingerprint: fingerprint,
                    num_batches,
                    cursor,
                    params,
                    opt: AdamState { lr, beta1, beta2, eps: 1e-8, t, moments },
                    losses,
                    train_order: (0..cursor).collect(),
                    digests,
                }
            },
        )
}

proptest! {
    /// decode(encode(c)) == c for arbitrary shapes — every field, every
    /// optimizer moment matrix, bitwise.
    #[test]
    fn roundtrip_is_identity(ckpt in arb_checkpoint()) {
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("well-formed checkpoint must decode");
        prop_assert_eq!(back, ckpt);
    }

    /// Truncation at EVERY byte offset is rejected — there is no prefix
    /// length at which a cut file silently decodes.
    #[test]
    fn truncation_at_every_offset_is_rejected(ckpt in arb_checkpoint()) {
        let bytes = ckpt.encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    /// Flipping any single bit is caught (by the magic, version, framing,
    /// or — for payload bytes — the checksum).
    #[test]
    fn single_bit_flip_is_rejected(ckpt in arb_checkpoint(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = ckpt.encode();
        let i = pos.index(bytes.len());
        bytes[i] ^= 1 << bit;
        prop_assert!(Checkpoint::decode(&bytes).is_err(), "bit {bit} of byte {i} flipped");
    }

    /// Appending trailing garbage is rejected even though the framed
    /// prefix is intact.
    #[test]
    fn trailing_garbage_is_rejected(ckpt in arb_checkpoint(), extra in proptest::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = ckpt.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CkptError::Mismatch(_))
        ));
    }

    /// A wrong magic is `BadMagic`, a wrong version is `BadVersion` —
    /// typed, before any payload is touched.
    #[test]
    fn magic_and_version_forgeries_are_typed(ckpt in arb_checkpoint(), v in 2u32..u32::MAX) {
        let good = ckpt.encode();

        let mut wrong_magic = good.clone();
        wrong_magic[0] ^= 0xFF;
        prop_assert!(matches!(
            Checkpoint::decode(&wrong_magic),
            Err(CkptError::BadMagic)
        ));

        // Patch the version and re-seal the checksum so only the version
        // check can object.
        let mut wrong_version = good.clone();
        wrong_version[8..12].copy_from_slice(&v.to_le_bytes());
        let body_len = wrong_version.len() - 8;
        let sum = fnv1a_local(&wrong_version[..body_len]);
        wrong_version[body_len..].copy_from_slice(&sum.to_le_bytes());
        prop_assert!(matches!(
            Checkpoint::decode(&wrong_version),
            Err(CkptError::BadVersion { found }) if found == v
        ));
    }
}

/// FNV-1a 64, restated here so the test does not depend on the crate
/// exposing its hash internals.
fn fnv1a_local(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
