//! Checkpoint codec + atomic-write microbench: what one periodic snapshot
//! costs off the hot path. `cargo bench -p bgl-exec --bench checkpoint --
//! --test` runs it in smoke mode (one pass, no statistics) for CI.

use bgl_exec::{AdamState, Checkpoint, CheckpointPolicy, CheckpointStore};
use bgl_obs::Registry;
use bgl_tensor::{Adam, Matrix, Optimizer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// A checkpoint shaped like the paper's default model (3 layers, 128
/// hidden) mid-epoch: ~100k parameters, warm Adam moments, a 40-batch
/// trained prefix.
fn representative_checkpoint() -> Checkpoint {
    let dims = [(100usize, 128usize), (128, 128), (128, 47)];
    let mut opt = Adam::new(1e-3);
    let mut params = Vec::new();
    for (slot, &(r, c)) in dims.iter().enumerate() {
        let mut w = Matrix::from_vec(r, c, (0..r * c).map(|i| (i as f32).sin()).collect());
        let g = Matrix::from_vec(r, c, vec![0.01; r * c]);
        opt.step(slot, &mut w, &g);
        params.extend_from_slice(w.raw());
    }
    let cursor = 40u64;
    Checkpoint {
        seed: 0xBE7C,
        fanouts: vec![10, 10, 10],
        batches_fingerprint: 0x1234_5678,
        num_batches: 196,
        cursor,
        params,
        opt: AdamState::capture(&opt),
        losses: (0..cursor).map(|i| 2.0 / (1.0 + i as f32)).collect(),
        train_order: (0..cursor).collect(),
        digests: (0..cursor).map(|i| i.wrapping_mul(0x9E37_79B9)).collect(),
    }
}

fn bench_checkpoint(c: &mut Criterion) {
    let ckpt = representative_checkpoint();
    let bytes = ckpt.encode();
    let mut group = c.benchmark_group("ckpt");
    group.sample_size(20).measurement_time(Duration::from_secs(3));

    println!("checkpoint wire size: {} bytes", bytes.len());
    group.bench_function("encode", |b| b.iter(|| std::hint::black_box(ckpt.encode())));
    group.bench_function("decode", |b| {
        b.iter(|| Checkpoint::decode(std::hint::black_box(&bytes)).unwrap())
    });

    // The full durable write: encode + temp file + fsync + rename + prune.
    let mut dir = std::env::temp_dir();
    dir.push(format!("bgl-ckpt-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = CheckpointPolicy::new(&dir).retain(2);
    let store = CheckpointStore::open(&policy, &Registry::disabled()).expect("open store");
    group.bench_function("atomic_write", |b| {
        b.iter(|| store.write(std::hint::black_box(&ckpt)).expect("write checkpoint"))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
