//! Property-based tests: every partitioner must produce a valid, complete
//! partition on arbitrary graphs, and the structural invariants of the
//! coarsening machinery must hold.

use bgl_graph::{GraphBuilder, NodeId};
use bgl_partition::block_graph::BlockGraph;
use bgl_partition::{
    BglPartitioner, GMinerPartitioner, HashPartitioner, LdgPartitioner,
    MetisLikePartitioner, Partitioner, RandomPartitioner, RoundRobinPartitioner,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (4usize..60).prop_flat_map(|n| {
        let arcs = proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..300);
        (Just(n), arcs)
    })
}

fn partitioners() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(RandomPartitioner::new(5)),
        Box::new(RoundRobinPartitioner),
        Box::new(HashPartitioner),
        Box::new(LdgPartitioner::new(5)),
        Box::new(GMinerPartitioner::default()),
        Box::new(MetisLikePartitioner::default()),
        Box::new(BglPartitioner::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_partitioners_cover_all_nodes((n, arcs) in arb_graph(), k in 1usize..5) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &arcs {
            b.add_undirected(u, v);
        }
        let g = b.build();
        let train: Vec<NodeId> = (0..n as NodeId).step_by(3).collect();
        for p in partitioners() {
            let part = p.partition(&g, &train, k);
            prop_assert_eq!(
                part.assignment.len(),
                n,
                "{} left nodes unassigned",
                p.name()
            );
            prop_assert!(
                part.assignment.iter().all(|&a| (a as usize) < k),
                "{} assigned out of range",
                p.name()
            );
            prop_assert_eq!(part.sizes().iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn coarsening_conserves_nodes_and_train(
        (n, arcs) in arb_graph(),
        cap in 1usize..20,
    ) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &arcs {
            b.add_undirected(u, v);
        }
        let g = b.build();
        let train: Vec<NodeId> = (0..n as NodeId).step_by(2).collect();
        let mut bg = BlockGraph::coarsen(&g, &train, cap, 9);
        prop_assert_eq!(bg.block_sizes.iter().sum::<usize>(), n);
        prop_assert_eq!(bg.block_train.iter().sum::<usize>(), train.len());
        prop_assert!(bg.block_sizes.iter().all(|&s| s <= cap));
        // Merging must conserve both totals and keep block_of consistent.
        bg.merge_small_blocks(&g, &train, 0.2, cap * 3, 11);
        prop_assert_eq!(bg.block_sizes.iter().sum::<usize>(), n);
        prop_assert_eq!(bg.block_train.iter().sum::<usize>(), train.len());
        let nb = bg.num_blocks();
        prop_assert!(bg.block_of.iter().all(|&b| (b as usize) < nb));
        // block_sizes must agree with the node mapping.
        let mut counted = vec![0usize; nb];
        for &b in &bg.block_of {
            counted[b as usize] += 1;
        }
        prop_assert_eq!(counted, bg.block_sizes.clone());
    }

    #[test]
    fn block_adjacency_has_no_self_loops((n, arcs) in arb_graph()) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &arcs {
            b.add_undirected(u, v);
        }
        let g = b.build();
        let bg = BlockGraph::coarsen(&g, &[], 5, 3);
        for (bid, nbrs) in bg.adj.iter().enumerate() {
            for &(nb, w) in nbrs {
                prop_assert_ne!(nb as usize, bid, "self loop in block graph");
                prop_assert!(w >= 1);
            }
        }
    }

    #[test]
    fn metrics_are_bounded((n, arcs) in arb_graph(), k in 1usize..4) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &arcs {
            b.add_undirected(u, v);
        }
        let g = b.build();
        let train: Vec<NodeId> = (0..n as NodeId / 2).collect();
        let p = RandomPartitioner::new(1).partition(&g, &train, k);
        let cut = bgl_partition::metrics::edge_cut_fraction(&g, &p);
        prop_assert!((0.0..=1.0).contains(&cut));
        let loc = bgl_partition::metrics::khop_locality(&g, &p, &train, 2, 10, 1);
        prop_assert!((0.0..=1.0).contains(&loc));
        let rp = bgl_partition::metrics::avg_remote_partitions(&g, &p, &train, 2, 10, 1);
        prop_assert!(rp <= (k as f64 - 1.0).max(0.0) + 1e-9);
    }
}
