//! METIS-like multilevel partitioner.
//!
//! DGL uses METIS for graphs that fit on one machine (paper §5.1). Real
//! METIS coarsens by maximal heavy-edge matching, partitions the coarsest
//! graph, and refines with Kernighan–Lin moves while uncoarsening — and its
//! memory profile is exactly why Table 1 marks it non-scalable. This module
//! reproduces that structure faithfully at small scale:
//!
//! 1. repeated heavy-edge matching until the graph is below a threshold,
//! 2. greedy growth partitioning of the coarsest graph,
//! 3. boundary refinement (positive-gain moves under a balance constraint)
//!    at every uncoarsening level.

use crate::{Partition, Partitioner};
use bgl_graph::{Csr, NodeId};
use rand::prelude::*;
use std::collections::HashMap;

/// Multilevel matching-based partitioner (small graphs only).
#[derive(Clone, Copy, Debug)]
pub struct MetisLikePartitioner {
    /// Stop coarsening below this many nodes.
    pub coarsest: usize,
    /// Allowed imbalance: max partition size ≤ (1 + slack) * |V|/k.
    pub slack: f64,
    /// Refinement sweeps per uncoarsening level.
    pub refine_passes: usize,
    pub seed: u64,
}

impl Default for MetisLikePartitioner {
    fn default() -> Self {
        MetisLikePartitioner { coarsest: 256, slack: 0.1, refine_passes: 4, seed: 0x7115 }
    }
}

/// One coarsening level: weighted graph + mapping to the finer level.
struct Level {
    /// Weighted adjacency: adj[v] = (neighbor, edge weight).
    adj: Vec<Vec<(u32, u64)>>,
    /// Node weights (number of original nodes merged).
    weights: Vec<u64>,
    /// For each fine node, its coarse node (fine graph is the previous level).
    fine_to_coarse: Vec<u32>,
}

fn to_weighted(g: &Csr) -> (Vec<Vec<(u32, u64)>>, Vec<u64>) {
    let adj = (0..g.num_nodes() as NodeId)
        .map(|v| g.neighbors(v).iter().map(|&u| (u, 1u64)).collect())
        .collect();
    (adj, vec![1; g.num_nodes()])
}

/// Heavy-edge matching: visit nodes in random order; match each unmatched
/// node to its unmatched neighbor with the heaviest edge.
fn coarsen_once(
    adj: &[Vec<(u32, u64)>],
    weights: &[u64],
    rng: &mut StdRng,
) -> Level {
    let n = adj.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut mate = vec![u32::MAX; n];
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let best = adj[v as usize]
            .iter()
            .filter(|&&(u, _)| u != v && mate[u as usize] == u32::MAX)
            .max_by_key(|&&(_, w)| w);
        match best {
            Some(&(u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // self-matched
        }
    }
    // Assign coarse IDs.
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if fine_to_coarse[v as usize] != u32::MAX {
            continue;
        }
        fine_to_coarse[v as usize] = next;
        let m = mate[v as usize];
        if m != v && fine_to_coarse[m as usize] == u32::MAX {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    let cn = next as usize;
    let mut cweights = vec![0u64; cn];
    for v in 0..n {
        cweights[fine_to_coarse[v] as usize] += weights[v];
    }
    let mut edge_maps: Vec<HashMap<u32, u64>> = vec![HashMap::new(); cn];
    for v in 0..n {
        let cv = fine_to_coarse[v];
        for &(u, w) in &adj[v] {
            let cu = fine_to_coarse[u as usize];
            if cu != cv {
                *edge_maps[cv as usize].entry(cu).or_insert(0) += w;
            }
        }
    }
    let cadj = edge_maps
        .into_iter()
        .map(|m| {
            let mut v: Vec<(u32, u64)> = m.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect();
    Level { adj: cadj, weights: cweights, fine_to_coarse }
}

/// Greedy graph growing on the coarsest graph (the GGGP step of real
/// METIS): grow one partition at a time, always absorbing the unassigned
/// node with the heaviest total edge weight into the growing partition, so
/// growth follows communities instead of hop counts.
fn initial_partition(
    adj: &[Vec<(u32, u64)>],
    weights: &[u64],
    k: usize,
) -> Vec<u32> {
    use std::collections::BinaryHeap;
    let n = adj.len();
    let total: u64 = weights.iter().sum();
    let budget = total as f64 / k as f64;
    let mut part = vec![u32::MAX; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(weights[v as usize]));
    let mut oi = 0usize;
    for cur in 0..k as u32 {
        // Seed from the heaviest unassigned node.
        while oi < n && part[order[oi] as usize] != u32::MAX {
            oi += 1;
        }
        if oi == n {
            break;
        }
        let mut cur_weight = 0f64;
        // Max-heap keyed by connection weight into the growing partition.
        let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
        heap.push((0, order[oi]));
        while cur_weight < budget {
            let v = loop {
                match heap.pop() {
                    Some((_, v)) if part[v as usize] == u32::MAX => break Some(v),
                    Some(_) => continue,
                    None => break None,
                }
            };
            let Some(v) = v else { break };
            part[v as usize] = cur;
            cur_weight += weights[v as usize] as f64;
            for &(u, w) in &adj[v as usize] {
                if part[u as usize] == u32::MAX {
                    heap.push((w, u));
                }
            }
        }
    }
    // Any leftovers (disconnected tails) go to the last partition.
    for p in part.iter_mut() {
        if *p == u32::MAX {
            *p = (k - 1) as u32;
        }
    }
    part
}

/// One pass of boundary refinement: move a node to the adjacent partition
/// with the largest positive cut gain, if the balance constraint allows.
fn refine(
    adj: &[Vec<(u32, u64)>],
    weights: &[u64],
    part: &mut [u32],
    k: usize,
    slack: f64,
) {
    let total: u64 = weights.iter().sum();
    let cap = (total as f64 / k as f64) * (1.0 + slack);
    let mut part_weight = vec![0u64; k];
    for (v, &p) in part.iter().enumerate() {
        part_weight[p as usize] += weights[v];
    }
    for v in 0..adj.len() {
        let pv = part[v] as usize;
        let mut gain = vec![0i64; k];
        for &(u, w) in &adj[v] {
            gain[part[u as usize] as usize] += w as i64;
        }
        let internal = gain[pv];
        let best = (0..k)
            .filter(|&i| i != pv)
            .max_by_key(|&i| gain[i])
            .unwrap_or(pv);
        if best != pv
            && gain[best] > internal
            && part_weight[best] as f64 + weights[v] as f64 <= cap
        {
            part_weight[pv] -= weights[v];
            part_weight[best] += weights[v];
            part[v] = best as u32;
        }
    }
}

impl Partitioner for MetisLikePartitioner {
    fn name(&self) -> &'static str {
        "metis-like"
    }

    fn partition(&self, g: &Csr, _train: &[NodeId], k: usize) -> Partition {
        let n = g.num_nodes();
        if n == 0 {
            return Partition::new(k, Vec::new());
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // graphs[i] is level i's weighted graph (level 0 = original);
        // maps[i] sends level-i node ids to level-(i+1) ids.
        type WeightedLevel = (Vec<Vec<(u32, u64)>>, Vec<u64>);
        let mut graphs: Vec<WeightedLevel> = vec![to_weighted(g)];
        let mut maps: Vec<Vec<u32>> = Vec::new();
        while graphs.last().unwrap().0.len() > self.coarsest.max(4 * k) {
            let (adj, weights) = graphs.last().unwrap();
            let level = coarsen_once(adj, weights, &mut rng);
            if level.weights.len() as f64 > adj.len() as f64 * 0.95 {
                break; // matching stalled (e.g. star graphs)
            }
            maps.push(level.fine_to_coarse);
            graphs.push((level.adj, level.weights));
        }
        // Partition the coarsest level, then project back with refinement
        // at every level (the Kernighan–Lin uncoarsening sweep).
        let (cadj, cweights) = graphs.last().unwrap();
        let mut part = initial_partition(cadj, cweights, k);
        for _ in 0..self.refine_passes {
            refine(cadj, cweights, &mut part, k, self.slack);
        }
        for lvl in (0..maps.len()).rev() {
            let map = &maps[lvl];
            let mut fine_part = vec![0u32; map.len()];
            for v in 0..map.len() {
                fine_part[v] = part[map[v] as usize];
            }
            part = fine_part;
            let (fadj, fweights) = &graphs[lvl];
            for _ in 0..self.refine_passes {
                refine(fadj, fweights, &mut part, k, self.slack);
            }
        }
        Partition::new(k, part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::random::RandomPartitioner;
    use bgl_graph::generate::{self, CommunityConfig};

    #[test]
    fn valid_partition_with_low_cut() {
        let g = generate::community_graph(
            CommunityConfig { n: 2000, communities: 4, intra: 10, inter: 1 },
            5,
        );
        let p = MetisLikePartitioner::default().partition(&g, &[], 4);
        assert_eq!(p.assignment.len(), 2000);
        let rnd = RandomPartitioner::new(3).partition(&g, &[], 4);
        let cut = metrics::edge_cut_fraction(&g, &p);
        let rcut = metrics::edge_cut_fraction(&g, &rnd);
        assert!(cut < rcut * 0.6, "metis cut {:.3} vs random {:.3}", cut, rcut);
    }

    #[test]
    fn partitions_all_used() {
        let g = generate::erdos_renyi(500, 2000, 4);
        let p = MetisLikePartitioner::default().partition(&g, &[], 4);
        assert!(p.sizes().iter().all(|&s| s > 0), "{:?}", p.sizes());
    }

    #[test]
    fn handles_tiny_graph() {
        let g = generate::erdos_renyi(16, 30, 1);
        let p = MetisLikePartitioner::default().partition(&g, &[], 2);
        assert_eq!(p.assignment.len(), 16);
    }
}
