//! The paper's partition algorithm (§3.3): BFS coarsening, multi-level
//! merging, greedy multi-hop assignment, uncoarsening.

use crate::block_graph::BlockGraph;
use crate::{Partition, Partitioner};
use bgl_graph::{Csr, NodeId};

/// Tuning knobs for [`BglPartitioner`].
#[derive(Clone, Copy, Debug)]
pub struct BglConfig {
    /// Block size cap for BFS coarsening, as a fraction of `|V| / k`.
    /// The paper uses an absolute threshold (e.g. 100 K on billion-node
    /// graphs); relative-to-partition-capacity keeps the coarsened graph
    /// meaningfully smaller than the partition count at every scale.
    pub block_cap_frac: f64,
    /// Size quantile above which a block counts as "large" for multi-level
    /// merging (paper: top 10%).
    pub large_frac: f64,
    /// Hop depth `j` for the multi-hop neighbor term (paper evaluates j=2).
    pub jhop: usize,
    pub seed: u64,
}

impl Default for BglConfig {
    fn default() -> Self {
        BglConfig { block_cap_frac: 1.0 / 32.0, large_frac: 0.1, jhop: 2, seed: 0xB6 }
    }
}

/// The BGL partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct BglPartitioner {
    pub config: BglConfig,
}

impl BglPartitioner {
    pub fn new(config: BglConfig) -> Self {
        BglPartitioner { config }
    }

    /// Assignment heuristic over coarsened blocks (paper §3.3.2):
    ///
    /// `argmax_i (Σ_j |P(i) ∩ Γ^j(B)|) · (1 − |P(i)|/C) · (1 − |T(i)|/C_T)`
    ///
    /// Implementation notes (documented deviations, see DESIGN.md):
    /// * the multi-hop term uses `1 + Σ…` so that the two balance penalties
    ///   still discriminate when no neighbor of `B` is assigned yet (a bare
    ///   product would be 0 for every partition and degenerate to "first
    ///   index wins");
    /// * penalties are clamped at a small positive floor so a partition that
    ///   reached its capacity is strongly, but not infinitely, discouraged —
    ///   rounding can force |P(i)| marginally past C on the last blocks.
    fn assign_blocks(&self, bg: &BlockGraph, k: usize) -> Vec<u32> {
        let nb = bg.num_blocks();
        let total_nodes: usize = bg.block_sizes.iter().sum();
        let total_train: usize = bg.block_train.iter().sum();
        let cap_nodes = (total_nodes as f64 / k as f64).max(1.0);
        let cap_train = (total_train as f64 / k as f64).max(1.0);

        // Process blocks in a *heaviest-edge-first traversal* of the block
        // graph (seeded at the largest block, restarting at the largest
        // unvisited block). Streaming in graph order means nearly every
        // block arrives with already-assigned neighbors, so the multi-hop
        // locality term has signal from the first blocks onward — a
        // descending-size order would scatter the early blocks and lock in
        // a bad mixture.
        let order = self.traversal_order(bg);

        let mut block_part = vec![u32::MAX; nb];
        let mut part_nodes = vec![0usize; k];
        let mut part_train = vec![0usize; k];
        const FLOOR: f64 = 1e-3;

        let score_of = |bg: &BlockGraph,
                        block_part: &[u32],
                        part_nodes: &[usize],
                        part_train: &[usize],
                        b: u32|
         -> usize {
            // Affinity of already-assigned j-hop neighbor blocks per
            // partition: first-hop neighbors weighted by cross-edge count,
            // deeper hops by 1 (see `jhop_blocks_weighted`).
            let mut neighbor_hits = vec![0u64; k];
            for (nb_block, w) in bg.jhop_blocks_weighted(b, self.config.jhop) {
                let p = block_part[nb_block as usize];
                if p != u32::MAX {
                    neighbor_hits[p as usize] += w;
                }
            }
            // Hard capacity: a partition may not grow past (1 + slack)·C.
            // The multiplicative penalty alone cannot bound overflow when
            // the locality weights are large, so the capacity constraint C
            // from the paper's heuristic is enforced exactly (with a small
            // slack for block granularity); the penalties then arbitrate
            // within the feasible set.
            let bsize = bg.block_sizes[b as usize] as f64;
            let hard_cap = cap_nodes * 1.05 + bsize;
            let mut best = usize::MAX;
            let mut best_score = f64::NEG_INFINITY;
            for i in 0..k {
                if part_nodes[i] as f64 + bsize > hard_cap {
                    continue;
                }
                let locality = 1.0 + neighbor_hits[i] as f64;
                let node_pen = (1.0 - part_nodes[i] as f64 / cap_nodes).max(FLOOR);
                let train_pen = (1.0 - part_train[i] as f64 / cap_train).max(FLOOR);
                let score = locality * node_pen * train_pen;
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            if best == usize::MAX {
                // All partitions at capacity (rounding tail): least-loaded.
                best = (0..k).min_by_key(|&i| part_nodes[i]).unwrap();
            }
            best
        };

        for &b in &order {
            let best = score_of(bg, &block_part, &part_nodes, &part_train, b);
            block_part[b as usize] = best as u32;
            part_nodes[best] += bg.block_sizes[b as usize];
            part_train[best] += bg.block_train[b as usize];
        }

        // Refinement sweeps: re-evaluate each block against the final
        // global state; move it when the heuristic prefers another
        // partition. (The greedy stream sees only a prefix; a couple of
        // sweeps fix early mistakes at negligible cost on the coarse graph.)
        for _ in 0..2 {
            let mut moved = 0usize;
            for &b in &order {
                let cur = block_part[b as usize] as usize;
                part_nodes[cur] -= bg.block_sizes[b as usize];
                part_train[cur] -= bg.block_train[b as usize];
                block_part[b as usize] = u32::MAX;
                let best = score_of(bg, &block_part, &part_nodes, &part_train, b);
                block_part[b as usize] = best as u32;
                part_nodes[best] += bg.block_sizes[b as usize];
                part_train[best] += bg.block_train[b as usize];
                if best != cur {
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }
        block_part
    }

    /// Heaviest-edge-first traversal order over the block graph: start at
    /// the largest block, repeatedly visit the unvisited block with the
    /// strongest connection to the visited set (restarting at the largest
    /// unvisited block per component).
    fn traversal_order(&self, bg: &BlockGraph) -> Vec<u32> {
        use std::collections::BinaryHeap;
        let nb = bg.num_blocks();
        let mut visited = vec![false; nb];
        let mut order = Vec::with_capacity(nb);
        let mut by_size: Vec<u32> = (0..nb as u32).collect();
        by_size.sort_by_key(|&b| std::cmp::Reverse(bg.block_sizes[b as usize]));
        let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
        let mut cursor = 0usize;
        while order.len() < nb {
            let b = match heap.pop() {
                Some((_, b)) if !visited[b as usize] => b,
                Some(_) => continue,
                None => {
                    while cursor < nb && visited[by_size[cursor] as usize] {
                        cursor += 1;
                    }
                    by_size[cursor]
                }
            };
            visited[b as usize] = true;
            order.push(b);
            for &(nbk, w) in &bg.adj[b as usize] {
                if !visited[nbk as usize] {
                    heap.push((w, nbk));
                }
            }
        }
        order
    }
}

impl Partitioner for BglPartitioner {
    fn name(&self) -> &'static str {
        "bgl"
    }

    fn partition(&self, g: &Csr, train_nodes: &[NodeId], k: usize) -> Partition {
        let n = g.num_nodes();
        if n == 0 {
            return Partition::new(k, Vec::new());
        }
        let cap = ((n as f64 / k as f64) * self.config.block_cap_frac)
            .ceil()
            .max(1.0) as usize;
        // Step ①-②: capped BFS block generation (coarsening).
        let mut bg = BlockGraph::coarsen(g, train_nodes, cap, self.config.seed);
        // Multi-level merging of small blocks.
        bg.merge_small_blocks(g, train_nodes, self.config.large_frac, cap, self.config.seed ^ 0x5EED);
        // Step ③: greedy assignment on the coarsened graph.
        let block_part = self.assign_blocks(&bg, k);
        // Uncoarsening: nodes inherit their block's partition.
        let assignment = bg
            .block_of
            .iter()
            .map(|&b| block_part[b as usize])
            .collect();
        Partition::new(k, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::random::RandomPartitioner;
    use bgl_graph::generate::{self, CommunityConfig};

    fn community() -> Csr {
        generate::community_graph(
            CommunityConfig { n: 4000, communities: 16, intra: 8, inter: 1 },
            13,
        )
    }

    #[test]
    fn produces_valid_partition() {
        let g = community();
        let train: Vec<NodeId> = (0..400).collect();
        let p = BglPartitioner::default().partition(&g, &train, 4);
        assert_eq!(p.assignment.len(), g.num_nodes());
        assert_eq!(p.sizes().iter().sum::<usize>(), g.num_nodes());
    }

    #[test]
    fn beats_random_on_edge_cut() {
        let g = community();
        let train: Vec<NodeId> = (0..400).collect();
        let bgl = BglPartitioner::default().partition(&g, &train, 4);
        let rnd = RandomPartitioner::new(1).partition(&g, &train, 4);
        let cut_bgl = metrics::edge_cut_fraction(&g, &bgl);
        let cut_rnd = metrics::edge_cut_fraction(&g, &rnd);
        assert!(
            cut_bgl < cut_rnd * 0.7,
            "bgl cut {:.3} should be well below random {:.3}",
            cut_bgl,
            cut_rnd
        );
    }

    #[test]
    fn balances_training_nodes() {
        let g = community();
        // Adversarial: all training nodes in the first 2 communities.
        let train: Vec<NodeId> = (0..500).collect();
        let p = BglPartitioner::default().partition(&g, &train, 4);
        let imb = metrics::balance_ratio(&p.counts_of(&train));
        assert!(
            imb < 1.8,
            "train imbalance {} too high (counts {:?})",
            imb,
            p.counts_of(&train)
        );
    }

    #[test]
    fn node_counts_roughly_balanced() {
        let g = community();
        let train: Vec<NodeId> = (0..100).collect();
        let p = BglPartitioner::default().partition(&g, &train, 8);
        let imb = metrics::balance_ratio(&p.sizes());
        assert!(imb < 1.6, "node imbalance {} (sizes {:?})", imb, p.sizes());
    }

    #[test]
    fn single_partition_degenerate_case() {
        let g = community();
        let p = BglPartitioner::default().partition(&g, &[], 1);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = community();
        let train: Vec<NodeId> = (0..100).collect();
        let a = BglPartitioner::default().partition(&g, &train, 4);
        let b = BglPartitioner::default().partition(&g, &train, 4);
        assert_eq!(a.assignment, b.assignment);
    }
}

