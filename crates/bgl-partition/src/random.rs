//! Locality-agnostic baseline partitioners: random, round-robin, hash.
//!
//! These are what Euler uses for everything and DGL falls back to for graphs
//! that do not fit one machine (paper §5.1, "Graph Partitioning"). They
//! scale trivially and balance perfectly but scatter every neighborhood
//! across partitions — the cause of Euler's 69x deficit (§5.2).

use crate::{Partition, Partitioner};
use bgl_graph::{Csr, NodeId};
use rand::prelude::*;

/// Uniform random assignment, seeded for reproducibility.
#[derive(Clone, Copy, Debug)]
pub struct RandomPartitioner {
    pub seed: u64,
}

impl RandomPartitioner {
    pub fn new(seed: u64) -> Self {
        RandomPartitioner { seed }
    }
}

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn partition(&self, g: &Csr, _train: &[NodeId], k: usize) -> Partition {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let assignment = (0..g.num_nodes())
            .map(|_| rng.random_range(0..k) as u32)
            .collect();
        Partition::new(k, assignment)
    }
}

/// Node `v` goes to partition `v % k`. Deterministic and exactly balanced.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinPartitioner;

impl Partitioner for RoundRobinPartitioner {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn partition(&self, g: &Csr, _train: &[NodeId], k: usize) -> Partition {
        let assignment = (0..g.num_nodes()).map(|v| (v % k) as u32).collect();
        Partition::new(k, assignment)
    }
}

/// Multiplicative-hash assignment — what "random hashing partitioning" in
/// distributed stores actually is (stable across runs, no RNG state).
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn partition(&self, g: &Csr, _train: &[NodeId], k: usize) -> Partition {
        let assignment = (0..g.num_nodes() as u64)
            .map(|v| {
                // Fibonacci hashing on the node id.
                let h = v.wrapping_mul(0x9E3779B97F4A7C15);
                ((h >> 33) % k as u64) as u32
            })
            .collect();
        Partition::new(k, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_graph::generate;

    fn graph() -> Csr {
        generate::erdos_renyi(1000, 4000, 1)
    }

    #[test]
    fn random_is_roughly_balanced() {
        let g = graph();
        let p = RandomPartitioner::new(3).partition(&g, &[], 4);
        let sizes = p.sizes();
        let expected = 1000 / 4;
        for &s in &sizes {
            assert!(
                (s as i64 - expected as i64).abs() < 80,
                "size {} too far from {}",
                s,
                expected
            );
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = graph();
        let a = RandomPartitioner::new(7).partition(&g, &[], 4);
        let b = RandomPartitioner::new(7).partition(&g, &[], 4);
        assert_eq!(a.assignment, b.assignment);
        let c = RandomPartitioner::new(8).partition(&g, &[], 4);
        assert_ne!(a.assignment, c.assignment);
    }

    #[test]
    fn round_robin_exactly_balanced() {
        let g = graph();
        let p = RoundRobinPartitioner.partition(&g, &[], 4);
        assert!(p.sizes().iter().all(|&s| s == 250));
    }

    #[test]
    fn hash_covers_all_partitions() {
        let g = graph();
        let p = HashPartitioner.partition(&g, &[], 8);
        let sizes = p.sizes();
        assert!(sizes.iter().all(|&s| s > 0), "{:?}", sizes);
    }
}
