//! # bgl-partition — graph partitioning for distributed GNN sampling
//!
//! Implements the paper's partition algorithm (§3.3) and every baseline it
//! is compared against (Table 1, Table 3, Table 4):
//!
//! * [`RandomPartitioner`] / [`RoundRobinPartitioner`] / [`HashPartitioner`]
//!   — the locality-agnostic schemes used by Euler and (for large graphs)
//!   DGL;
//! * [`LdgPartitioner`] — Linear Deterministic Greedy streaming partitioning
//!   (one-hop locality, node balance);
//! * [`GMinerPartitioner`] — a GMiner-like connectivity-preserving scheme:
//!   BFS-grown chunks assigned by **one-hop** block locality with node
//!   balance but **no training-node balancing** (the deficit Table 3's
//!   User-Item row exposes);
//! * [`MetisLikePartitioner`] — multilevel heavy-edge-matching coarsening +
//!   greedy initial partition + boundary refinement. Like real METIS it is
//!   memory-hungry and only suitable for small graphs (Table 1);
//! * [`BglPartitioner`] — the paper's contribution: multi-source BFS block
//!   generation, multi-level small-block merging, and greedy assignment
//!   maximizing `(Σ_j |P(i) ∩ Γ^j(B)|) · (1−|P(i)|/C) · (1−|T(i)|/C_T)`,
//!   followed by uncoarsening.
//!
//! [`metrics`] quantifies what Table 3 measures indirectly: edge cut,
//! multi-hop locality of training nodes, and training-node balance.

pub mod bgl;
pub mod block_graph;
pub mod gminer;
pub mod ldg;
pub mod metis_like;
pub mod metrics;
pub mod random;

pub use bgl::{BglConfig, BglPartitioner};
pub use gminer::GMinerPartitioner;
pub use ldg::{ldg_choose, LdgPartitioner};
pub use metis_like::MetisLikePartitioner;
pub use random::{HashPartitioner, RandomPartitioner, RoundRobinPartitioner};

use bgl_graph::{Csr, NodeId};

/// A k-way node partition: `assignment[v]` is the partition index of `v`.
#[derive(Clone, Debug)]
pub struct Partition {
    pub k: usize,
    pub assignment: Vec<u32>,
}

impl Partition {
    /// Construct, validating every assignment is `< k`.
    pub fn new(k: usize, assignment: Vec<u32>) -> Self {
        assert!(k >= 1, "need at least one partition");
        assert!(
            assignment.iter().all(|&p| (p as usize) < k),
            "assignment out of range"
        );
        Partition { k, assignment }
    }

    /// Partition index of node `v`.
    #[inline]
    pub fn part_of(&self, v: NodeId) -> usize {
        self.assignment[v as usize] as usize
    }

    /// Node count per partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Count of the given nodes (e.g. training nodes) per partition.
    pub fn counts_of(&self, nodes: &[NodeId]) -> Vec<usize> {
        let mut counts = vec![0usize; self.k];
        for &v in nodes {
            counts[self.part_of(v)] += 1;
        }
        counts
    }

    /// The node IDs owned by each partition.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut members = vec![Vec::new(); self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            members[p as usize].push(v as NodeId);
        }
        members
    }
}

/// A graph partitioning algorithm.
///
/// `train_nodes` is supplied because the paper's key observation (§2.3,
/// Challenge 2) is that *training-node* balance — not total-node balance —
/// determines sampling load balance; algorithms that ignore it (everything
/// except BGL) simply do.
pub trait Partitioner {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Partition `g` into `k` parts.
    fn partition(&self, g: &Csr, train_nodes: &[NodeId], k: usize) -> Partition;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_accessors() {
        let p = Partition::new(2, vec![0, 1, 0, 1, 1]);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.sizes(), vec![2, 3]);
        assert_eq!(p.counts_of(&[0, 1, 4]), vec![1, 2]);
        let members = p.members();
        assert_eq!(members[0], vec![0, 2]);
        assert_eq!(members[1], vec![1, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        Partition::new(2, vec![0, 2]);
    }
}
