//! Linear Deterministic Greedy (LDG) streaming partitioner.
//!
//! One of the streaming schemes the related-work section cites (Abbas et
//! al., VLDB'18) for distributed GNN stores. Nodes arrive in a stream; each
//! is placed on the partition holding most of its already-placed neighbors,
//! discounted by a fullness penalty `1 - |P(i)|/C`. One-hop only, no
//! training-node awareness — a useful mid-point between random and BGL.

use crate::{Partition, Partitioner};
use bgl_graph::{Csr, NodeId};
use rand::prelude::*;

/// LDG streaming partitioner with a seeded random stream order.
#[derive(Clone, Copy, Debug)]
pub struct LdgPartitioner {
    pub seed: u64,
}

impl LdgPartitioner {
    pub fn new(seed: u64) -> Self {
        LdgPartitioner { seed }
    }
}

impl Partitioner for LdgPartitioner {
    fn name(&self) -> &'static str {
        "ldg"
    }

    fn partition(&self, g: &Csr, _train: &[NodeId], k: usize) -> Partition {
        let n = g.num_nodes();
        let cap = (n as f64 / k as f64).max(1.0);
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(&mut StdRng::seed_from_u64(self.seed));

        let mut assignment = vec![u32::MAX; n];
        let mut sizes = vec![0usize; k];
        for &v in &order {
            let mut hits = vec![0usize; k];
            for &u in g.neighbors(v) {
                let p = assignment[u as usize];
                if p != u32::MAX {
                    hits[p as usize] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for i in 0..k {
                let score = (1.0 + hits[i] as f64) * (1.0 - sizes[i] as f64 / cap).max(0.0);
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            assignment[v as usize] = best as u32;
            sizes[best] += 1;
        }
        Partition::new(k, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::random::RandomPartitioner;
    use bgl_graph::generate::{self, CommunityConfig};

    #[test]
    fn valid_balanced_and_local() {
        let g = generate::community_graph(
            CommunityConfig { n: 2000, communities: 8, intra: 8, inter: 1 },
            3,
        );
        let p = LdgPartitioner::new(1).partition(&g, &[], 4);
        assert!(p.assignment.iter().all(|&a| a < 4));
        assert!(metrics::balance_ratio(&p.sizes()) < 1.3);
        let rnd = RandomPartitioner::new(1).partition(&g, &[], 4);
        assert!(
            metrics::edge_cut_fraction(&g, &p) < metrics::edge_cut_fraction(&g, &rnd)
        );
    }

    #[test]
    fn never_exceeds_capacity_by_much() {
        let g = generate::erdos_renyi(1000, 3000, 2);
        let p = LdgPartitioner::new(9).partition(&g, &[], 3);
        // Hard cap: the fullness penalty zeroes out at C, so no partition
        // can exceed ceil(C) + 1.
        let cap: f64 = 1000.0 / 3.0;
        assert!(p.sizes().iter().all(|&s| (s as f64) <= cap.ceil() + 1.0));
    }
}
