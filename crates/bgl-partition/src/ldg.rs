//! Linear Deterministic Greedy (LDG) streaming partitioner.
//!
//! One of the streaming schemes the related-work section cites (Abbas et
//! al., VLDB'18) for distributed GNN stores. Nodes arrive in a stream; each
//! is placed on the partition holding most of its already-placed neighbors,
//! discounted by a fullness penalty `1 - |P(i)|/C`. One-hop only, no
//! training-node awareness — a useful mid-point between random and BGL.

use crate::{Partition, Partitioner};
use bgl_graph::{Csr, NodeId};
use rand::prelude::*;

/// LDG streaming partitioner with a seeded random stream order.
#[derive(Clone, Copy, Debug)]
pub struct LdgPartitioner {
    pub seed: u64,
}

impl LdgPartitioner {
    pub fn new(seed: u64) -> Self {
        LdgPartitioner { seed }
    }
}

/// The LDG placement rule for one arriving node: pick the partition
/// maximizing `(1 + hits) * (1 - size/cap)`, where `hits[i]` counts the
/// node's already-placed neighbors on partition `i` and the fullness
/// penalty clamps at 0. Ties (including the degenerate all-at-capacity
/// case where every score collapses to 0) break toward the least-loaded
/// partition, so late arrivals spread instead of piling onto partition 0.
///
/// Shared by the offline streaming pass below and the online per-arrival
/// assignment in `bgl-ingest`.
pub fn ldg_choose(hits: &[usize], sizes: &[usize], cap: f64) -> usize {
    debug_assert_eq!(hits.len(), sizes.len());
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for i in 0..hits.len() {
        let score = (1.0 + hits[i] as f64) * (1.0 - sizes[i] as f64 / cap).max(0.0);
        if score > best_score || (score == best_score && sizes[i] < sizes[best]) {
            best_score = score;
            best = i;
        }
    }
    best
}

impl Partitioner for LdgPartitioner {
    fn name(&self) -> &'static str {
        "ldg"
    }

    fn partition(&self, g: &Csr, _train: &[NodeId], k: usize) -> Partition {
        let n = g.num_nodes();
        let cap = (n as f64 / k as f64).max(1.0);
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(&mut StdRng::seed_from_u64(self.seed));

        let mut assignment = vec![u32::MAX; n];
        let mut sizes = vec![0usize; k];
        // One scratch buffer for the whole stream: this loop runs once per
        // node here and once per *arrival* on the ingest path.
        let mut hits = vec![0usize; k];
        for &v in &order {
            hits.fill(0);
            for &u in g.neighbors(v) {
                let p = assignment[u as usize];
                if p != u32::MAX {
                    hits[p as usize] += 1;
                }
            }
            let best = ldg_choose(&hits, &sizes, cap);
            assignment[v as usize] = best as u32;
            sizes[best] += 1;
        }
        Partition::new(k, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::random::RandomPartitioner;
    use bgl_graph::generate::{self, CommunityConfig};

    #[test]
    fn valid_balanced_and_local() {
        let g = generate::community_graph(
            CommunityConfig { n: 2000, communities: 8, intra: 8, inter: 1 },
            3,
        );
        let p = LdgPartitioner::new(1).partition(&g, &[], 4);
        assert!(p.assignment.iter().all(|&a| a < 4));
        assert!(metrics::balance_ratio(&p.sizes()) < 1.3);
        let rnd = RandomPartitioner::new(1).partition(&g, &[], 4);
        assert!(
            metrics::edge_cut_fraction(&g, &p) < metrics::edge_cut_fraction(&g, &rnd)
        );
    }

    #[test]
    fn never_exceeds_capacity_by_much() {
        let g = generate::erdos_renyi(1000, 3000, 2);
        let p = LdgPartitioner::new(9).partition(&g, &[], 3);
        // Hard cap: the fullness penalty zeroes out at C, so no partition
        // can exceed ceil(C) + 1.
        let cap: f64 = 1000.0 / 3.0;
        assert!(p.sizes().iter().all(|&s| (s as f64) <= cap.ceil() + 1.0));
    }

    #[test]
    fn saturated_ties_break_toward_least_loaded() {
        // Regression: with every partition at capacity all scores collapse
        // to 0.0, and the old `score > best_score` rule left `best` at 0,
        // so partition 0 absorbed every remaining node.
        let sizes = [10usize, 10, 10];
        let hits = [5usize, 0, 0];
        // All scores are 0 — neighbor hits can no longer differentiate.
        assert_eq!(ldg_choose(&hits, &sizes, 10.0), 0, "equal loads keep first");
        let sizes = [12usize, 10, 11];
        assert_eq!(
            ldg_choose(&hits, &sizes, 10.0),
            1,
            "degenerate ties go to the least-loaded partition"
        );
        // Non-degenerate ties too: identical positive scores prefer the
        // lighter partition.
        let sizes = [4usize, 2, 4];
        let hits = [0usize, 0, 0];
        assert_eq!(ldg_choose(&hits, &sizes, 8.0), 1);
    }

    #[test]
    fn saturated_stream_does_not_pile_onto_partition_zero() {
        // Tiny capacity relative to the stream: most placements happen in
        // the all-at-capacity regime. The old tie-break produced a single
        // giant partition 0; the fix keeps the overflow spread evenly.
        let g = generate::erdos_renyi(300, 900, 4);
        let p = LdgPartitioner::new(3).partition(&g, &[], 7);
        let sizes = p.sizes();
        let (max, min) = (
            *sizes.iter().max().unwrap() as f64,
            *sizes.iter().min().unwrap() as f64,
        );
        assert!(
            max <= min + (300.0f64 / 7.0).ceil() + 1.0,
            "saturated overflow must stay spread: sizes {:?}",
            sizes
        );
    }
}
