//! Partition quality metrics.
//!
//! These quantify the three properties Table 1 of the paper compares
//! partitioners on: locality (edge cut, multi-hop locality), training-node
//! balance, and total-node balance — and they predict the sampling times
//! Table 3 measures.

use crate::Partition;
use bgl_graph::{khop_neighborhood, Csr, NodeId};
use rand::prelude::*;

/// Fraction of arcs whose endpoints land in different partitions.
pub fn edge_cut_fraction(g: &Csr, p: &Partition) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    let cut = g
        .edges()
        .filter(|&(u, v)| p.part_of(u) != p.part_of(v))
        .count();
    cut as f64 / g.num_edges() as f64
}

/// Max/mean ratio of a count vector — 1.0 is perfect balance.
pub fn balance_ratio(counts: &[usize]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0) as f64;
    let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Multi-hop locality: over a sample of `train_nodes`, the average fraction
/// of each node's `k`-hop neighborhood that lives in the node's own
/// partition. This is the quantity the BGL partitioner maximizes — it
/// directly determines how many sampling RPCs stay local (§3.3).
pub fn khop_locality(
    g: &Csr,
    p: &Partition,
    train_nodes: &[NodeId],
    k: usize,
    sample: usize,
    seed: u64,
) -> f64 {
    if train_nodes.is_empty() {
        return 1.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picks: Vec<NodeId> = train_nodes.to_vec();
    picks.shuffle(&mut rng);
    picks.truncate(sample.max(1));
    let mut total = 0.0f64;
    for &v in &picks {
        let hood = khop_neighborhood(g, v, k);
        if hood.len() <= 1 {
            total += 1.0;
            continue;
        }
        let home = p.part_of(v);
        let local = hood.iter().filter(|&&u| p.part_of(u) == home).count();
        total += local as f64 / hood.len() as f64;
    }
    total / picks.len() as f64
}

/// Expected number of *distinct remote partitions* touched when expanding
/// the `k`-hop neighborhood of a training node — each distinct remote
/// partition costs at least one cross-server RPC per hop in the store.
pub fn avg_remote_partitions(
    g: &Csr,
    p: &Partition,
    train_nodes: &[NodeId],
    k: usize,
    sample: usize,
    seed: u64,
) -> f64 {
    if train_nodes.is_empty() {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picks: Vec<NodeId> = train_nodes.to_vec();
    picks.shuffle(&mut rng);
    picks.truncate(sample.max(1));
    let mut total = 0usize;
    for &v in &picks {
        let home = p.part_of(v);
        let mut remote = std::collections::HashSet::new();
        for u in khop_neighborhood(g, v, k) {
            let pu = p.part_of(u);
            if pu != home {
                remote.insert(pu);
            }
        }
        total += remote.len();
    }
    total as f64 / picks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_graph::GraphBuilder;

    fn two_cliques() -> Csr {
        let mut b = GraphBuilder::new(8);
        for u in 0..4u32 {
            for v in 0..u {
                b.add_undirected(u, v);
            }
        }
        for u in 4..8u32 {
            for v in 4..u {
                b.add_undirected(u, v);
            }
        }
        b.add_undirected(0, 4); // single bridge
        b.build()
    }

    #[test]
    fn edge_cut_zero_for_perfect_split() {
        let g = two_cliques();
        let p = Partition::new(2, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        // Only the bridge is cut: 2 arcs out of 26.
        let cut = edge_cut_fraction(&g, &p);
        assert!((cut - 2.0 / 26.0).abs() < 1e-9, "cut {}", cut);
    }

    #[test]
    fn edge_cut_high_for_alternating_split() {
        let g = two_cliques();
        let p = Partition::new(2, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(edge_cut_fraction(&g, &p) > 0.5);
    }

    #[test]
    fn balance_ratio_bounds() {
        assert!((balance_ratio(&[10, 10, 10]) - 1.0).abs() < 1e-9);
        assert!((balance_ratio(&[30, 0, 0]) - 3.0).abs() < 1e-9);
        assert_eq!(balance_ratio(&[0, 0]), 1.0);
    }

    #[test]
    fn khop_locality_perfect_vs_scattered() {
        let g = two_cliques();
        let train = vec![1, 5];
        let good = Partition::new(2, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let bad = Partition::new(2, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let lg = khop_locality(&g, &good, &train, 1, 10, 1);
        let lb = khop_locality(&g, &bad, &train, 1, 10, 1);
        assert!(lg > 0.9, "good locality {}", lg);
        assert!(lb < 0.7, "bad locality {}", lb);
    }

    #[test]
    fn remote_partitions_zero_when_local() {
        let g = two_cliques();
        let p = Partition::new(2, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let r = avg_remote_partitions(&g, &p, &[1, 2], 1, 10, 1);
        assert_eq!(r, 0.0);
    }
}
