//! Coarsening utilities shared by the BGL and GMiner-like partitioners.
//!
//! A *block* is a connected set of nodes grown by capped BFS (paper §3.3.1
//! step ①-②). Treating blocks as super-nodes yields a coarsened graph small
//! enough for the quadratic-ish assignment heuristics to run on billion-node
//! inputs.

use bgl_graph::{Csr, NodeId};
use rand::prelude::*;
use std::collections::VecDeque;

/// The coarsened graph: node -> block mapping plus per-block aggregates and
/// the block-level weighted adjacency.
#[derive(Clone, Debug)]
pub struct BlockGraph {
    /// `block_of[v]` is the block containing node `v`.
    pub block_of: Vec<u32>,
    /// Node count per block.
    pub block_sizes: Vec<usize>,
    /// Training-node count per block.
    pub block_train: Vec<usize>,
    /// Weighted block adjacency: `adj[b]` lists `(neighbor_block, cross-edge
    /// count)`, sorted by neighbor block, excluding self-edges.
    pub adj: Vec<Vec<(u32, u64)>>,
}

impl BlockGraph {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_sizes.len()
    }

    /// Grow blocks by capped BFS from random unvisited sources until every
    /// node is covered (paper step ①): each source floods its block ID to
    /// unvisited neighbors; a block closes when it reaches `cap` nodes or
    /// its frontier empties.
    pub fn coarsen(g: &Csr, train_nodes: &[NodeId], cap: usize, seed: u64) -> Self {
        assert!(cap >= 1, "block cap must be >= 1");
        let n = g.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut visit_order: Vec<NodeId> = (0..n as NodeId).collect();
        visit_order.shuffle(&mut rng);

        let mut block_of = vec![u32::MAX; n];
        let mut block_sizes: Vec<usize> = Vec::new();
        let mut queue = VecDeque::new();
        for &src in &visit_order {
            if block_of[src as usize] != u32::MAX {
                continue;
            }
            let b = block_sizes.len() as u32;
            let mut size = 0usize;
            block_of[src as usize] = b;
            size += 1;
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                if size >= cap {
                    break;
                }
                for &v in g.neighbors(u) {
                    if block_of[v as usize] == u32::MAX && size < cap {
                        block_of[v as usize] = b;
                        size += 1;
                        queue.push_back(v);
                    }
                }
            }
            queue.clear();
            block_sizes.push(size);
        }

        let mut bg = BlockGraph {
            block_of,
            block_sizes,
            block_train: Vec::new(),
            adj: Vec::new(),
        };
        bg.rebuild_aggregates(g, train_nodes);
        bg
    }

    /// Recompute per-block training counts and the block adjacency from the
    /// current `block_of` mapping.
    pub fn rebuild_aggregates(&mut self, g: &Csr, train_nodes: &[NodeId]) {
        let nb = self.block_sizes.len();
        self.block_train = vec![0; nb];
        for &t in train_nodes {
            self.block_train[self.block_of[t as usize] as usize] += 1;
        }
        let mut edge_maps: Vec<std::collections::HashMap<u32, u64>> =
            vec![std::collections::HashMap::new(); nb];
        for (u, v) in g.edges() {
            let (bu, bv) = (self.block_of[u as usize], self.block_of[v as usize]);
            if bu != bv {
                *edge_maps[bu as usize].entry(bv).or_insert(0) += 1;
            }
        }
        self.adj = edge_maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(u32, u64)> = m.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
    }

    /// Multi-level merging (paper step ② refinement): blocks in the top
    /// `large_frac` size quantile are "large"; every small block with a
    /// large neighbor merges into its heaviest-connected large neighbor;
    /// remaining small blocks are merged together randomly up to `cap`.
    /// Returns the number of blocks after merging.
    pub fn merge_small_blocks(
        &mut self,
        g: &Csr,
        train_nodes: &[NodeId],
        large_frac: f64,
        cap: usize,
        seed: u64,
    ) -> usize {
        let nb = self.num_blocks();
        if nb <= 1 {
            return nb;
        }
        // Size threshold for "large": top `large_frac` of blocks by size.
        let mut sizes_sorted: Vec<usize> = self.block_sizes.clone();
        sizes_sorted.sort_unstable_by(|a, b| b.cmp(a));
        let cut = ((nb as f64 * large_frac).ceil() as usize).clamp(1, nb);
        let threshold = sizes_sorted[cut - 1].max(1);
        let is_large: Vec<bool> =
            self.block_sizes.iter().map(|&s| s >= threshold).collect();

        // Union-find over blocks.
        let mut parent: Vec<u32> = (0..nb as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }

        // Pass 1: small block with >= 1 large neighbor joins the one it
        // shares the most edges with — but a large block may only absorb up
        // to `cap` extra nodes, so merging never manufactures a mega-block
        // bigger than the partition-capacity-derived cap allows.
        let mut absorbed: Vec<usize> = vec![0; nb];
        for b in 0..nb {
            if is_large[b] {
                continue;
            }
            let mut candidates: Vec<(u32, u64)> = self.adj[b]
                .iter()
                .filter(|&&(nb_, _)| is_large[nb_ as usize])
                .copied()
                .collect();
            candidates.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
            for (target, _) in candidates {
                let root = find(&mut parent, target);
                if absorbed[root as usize] + self.block_sizes[b] <= cap {
                    absorbed[root as usize] += self.block_sizes[b];
                    parent[b] = root;
                    break;
                }
            }
        }
        // Pass 2: remaining small blocks merge randomly, respecting cap.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut loose: Vec<u32> = (0..nb as u32)
            .filter(|&b| !is_large[b as usize] && find(&mut parent, b) == b)
            .collect();
        loose.shuffle(&mut rng);
        let mut merged_size: Vec<usize> = self.block_sizes.clone();
        let mut acc: Option<u32> = None;
        for &b in &loose {
            match acc {
                None => acc = Some(b),
                Some(a) => {
                    if merged_size[a as usize] + merged_size[b as usize] <= cap {
                        parent[b as usize] = a;
                        merged_size[a as usize] += merged_size[b as usize];
                    } else {
                        acc = Some(b);
                    }
                }
            }
        }

        // Resolve every block's root first (find() must not race with the
        // remap), then compact root IDs into the final mapping.
        let roots: Vec<u32> = (0..nb as u32).map(|b| find(&mut parent, b)).collect();
        let mut remap = vec![u32::MAX; nb];
        let mut next = 0u32;
        for &root in &roots {
            if remap[root as usize] == u32::MAX {
                remap[root as usize] = next;
                next += 1;
            }
        }
        let new_nb = next as usize;
        let mut new_sizes = vec![0usize; new_nb];
        let mut final_map = vec![0u32; nb];
        for b in 0..nb {
            let nb_id = remap[roots[b] as usize];
            final_map[b] = nb_id;
            new_sizes[nb_id as usize] += self.block_sizes[b];
        }
        for bo in self.block_of.iter_mut() {
            *bo = final_map[*bo as usize];
        }
        self.block_sizes = new_sizes;
        self.rebuild_aggregates(g, train_nodes);
        new_nb
    }

    /// Blocks within `j` hops of `b` in the block graph (excluding `b`),
    /// deduplicated — `Γ^1(B) ∪ … ∪ Γ^j(B)` from the assignment heuristic.
    pub fn jhop_blocks(&self, b: u32, j: usize) -> Vec<u32> {
        self.jhop_blocks_weighted(b, j)
            .into_iter()
            .map(|(nb, _)| nb)
            .collect()
    }

    /// Like [`BlockGraph::jhop_blocks`], but each block carries an affinity
    /// weight: first-hop neighbors are weighted by their cross-edge count
    /// (a 30-edge neighbor matters more than a 1-edge one — important on
    /// graphs with random long-range edges, where a pure block *count*
    /// drowns the locality signal), further hops count 1 each.
    pub fn jhop_blocks_weighted(&self, b: u32, j: usize) -> Vec<(u32, u64)> {
        let mut seen = std::collections::HashSet::new();
        seen.insert(b);
        let mut frontier = vec![b];
        let mut out = Vec::new();
        for hop in 0..j {
            let mut next = Vec::new();
            for &x in &frontier {
                for &(nb, w) in &self.adj[x as usize] {
                    if seen.insert(nb) {
                        next.push(nb);
                        out.push((nb, if hop == 0 { w } else { 1 }));
                    }
                }
            }
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_graph::generate::{self, CommunityConfig};
    use bgl_graph::GraphBuilder;

    fn chain_graph(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_undirected(i as NodeId, (i + 1) as NodeId);
        }
        b.build()
    }

    #[test]
    fn coarsen_covers_every_node() {
        let g = chain_graph(100);
        let bg = BlockGraph::coarsen(&g, &[], 10, 1);
        assert!(bg.block_of.iter().all(|&b| b != u32::MAX));
        assert_eq!(bg.block_sizes.iter().sum::<usize>(), 100);
        assert!(bg.block_sizes.iter().all(|&s| s <= 10));
    }

    #[test]
    fn coarsen_blocks_are_connected() {
        // On a chain, every block must be a contiguous interval.
        let g = chain_graph(50);
        let bg = BlockGraph::coarsen(&g, &[], 8, 3);
        for b in 0..bg.num_blocks() as u32 {
            let members: Vec<usize> = (0..50)
                .filter(|&v| bg.block_of[v] == b)
                .collect();
            for w in members.windows(2) {
                assert_eq!(w[1] - w[0], 1, "block {} not contiguous: {:?}", b, members);
            }
        }
    }

    #[test]
    fn train_counts_accumulate() {
        let g = chain_graph(20);
        let train: Vec<NodeId> = vec![0, 1, 2, 19];
        let bg = BlockGraph::coarsen(&g, &train, 5, 1);
        assert_eq!(bg.block_train.iter().sum::<usize>(), 4);
    }

    #[test]
    fn adjacency_is_symmetric_in_blocks() {
        let g = generate::community_graph(
            CommunityConfig { n: 400, communities: 4, intra: 6, inter: 1 },
            7,
        );
        let bg = BlockGraph::coarsen(&g, &[], 40, 7);
        for b in 0..bg.num_blocks() as u32 {
            for &(nb, w) in &bg.adj[b as usize] {
                let back = bg.adj[nb as usize]
                    .iter()
                    .find(|&&(x, _)| x == b)
                    .map(|&(_, w2)| w2);
                assert_eq!(back, Some(w), "asymmetric block edge {}<->{}", b, nb);
            }
        }
    }

    #[test]
    fn merging_reduces_block_count_and_conserves_nodes() {
        let g = generate::community_graph(
            CommunityConfig { n: 1000, communities: 10, intra: 6, inter: 1 },
            5,
        );
        let mut bg = BlockGraph::coarsen(&g, &[], 20, 5);
        let before = bg.num_blocks();
        let after = bg.merge_small_blocks(&g, &[], 0.1, 200, 5);
        assert!(after < before, "merge did not shrink: {} -> {}", before, after);
        assert_eq!(bg.block_sizes.iter().sum::<usize>(), 1000);
        assert_eq!(bg.num_blocks(), after);
    }

    #[test]
    fn jhop_blocks_on_chain() {
        let g = chain_graph(100);
        // cap 10 on a chain gives ~10 sequential blocks.
        let bg = BlockGraph::coarsen(&g, &[], 10, 11);
        // pick a middle block and check 1-hop vs 2-hop growth
        let b = bg.block_of[50];
        let one = bg.jhop_blocks(b, 1);
        let two = bg.jhop_blocks(b, 2);
        assert!(two.len() >= one.len());
        for x in &one {
            assert!(two.contains(x));
        }
    }
}
