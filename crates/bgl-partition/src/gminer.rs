//! GMiner-like partitioner.
//!
//! GMiner (EuroSys'18) is the graph-mining system whose partitioning the
//! paper compares against in Tables 3 and 4. Per Table 1, it scales to
//! giant graphs and preserves **one-hop** connectivity, but balances
//! neither training nodes nor, under skew, sampling load. We reproduce
//! those properties by reusing the BFS-block coarsening and then assigning
//! blocks with only the one-hop locality and total-node balance terms —
//! i.e. BGL's heuristic with `j = 1` and the training-node penalty removed.
//! On workloads with spatially clustered training nodes this produces the
//! imbalance the paper observes (GMiner slower than Random on User-Item).

use crate::block_graph::BlockGraph;
use crate::{Partition, Partitioner};
use bgl_graph::{Csr, NodeId};

/// GMiner-like partitioner: one-hop locality + node balance only.
#[derive(Clone, Copy, Debug)]
pub struct GMinerPartitioner {
    /// Block size cap as a fraction of `|V| / k` (same meaning as in
    /// [`crate::BglConfig`]).
    pub block_cap_frac: f64,
    pub seed: u64,
}

impl Default for GMinerPartitioner {
    fn default() -> Self {
        // Much smaller blocks than BGL's: GMiner coarsens for fine-grained
        // mining tasks and preserves only one-hop connectivity (Table 1),
        // so its blocks capture immediate neighborhoods, not the multi-hop
        // regions BGL's sampling-aware cap keeps together.
        GMinerPartitioner { block_cap_frac: 1.0 / 256.0, seed: 0x61 }
    }
}

impl Partitioner for GMinerPartitioner {
    fn name(&self) -> &'static str {
        "gminer"
    }

    fn partition(&self, g: &Csr, _train: &[NodeId], k: usize) -> Partition {
        let n = g.num_nodes();
        if n == 0 {
            return Partition::new(k, Vec::new());
        }
        let cap = ((n as f64 / k as f64) * self.block_cap_frac).ceil().max(1.0) as usize;
        let bg = BlockGraph::coarsen(g, &[], cap, self.seed);

        let nb = bg.num_blocks();
        let cap_nodes = (n as f64 / k as f64).max(1.0);
        let mut order: Vec<u32> = (0..nb as u32).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(bg.block_sizes[b as usize]));

        let mut block_part = vec![u32::MAX; nb];
        let mut part_nodes = vec![0usize; k];
        const FLOOR: f64 = 1e-3;
        for &b in &order {
            // One-hop locality, weighted by cross-edge count (GMiner's
            // edge-affinity flavour).
            let mut hits = vec![0u64; k];
            for &(nbk, w) in &bg.adj[b as usize] {
                let p = block_part[nbk as usize];
                if p != u32::MAX {
                    hits[p as usize] += w;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for i in 0..k {
                let locality = 1.0 + hits[i] as f64;
                let node_pen = (1.0 - part_nodes[i] as f64 / cap_nodes).max(FLOOR);
                let score = locality * node_pen;
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            block_part[b as usize] = best as u32;
            part_nodes[best] += bg.block_sizes[b as usize];
        }
        let assignment = bg.block_of.iter().map(|&b| block_part[b as usize]).collect();
        Partition::new(k, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::random::RandomPartitioner;
    use bgl_graph::generate::{self, CommunityConfig};

    fn community() -> Csr {
        generate::community_graph(
            CommunityConfig { n: 4000, communities: 16, intra: 8, inter: 1 },
            17,
        )
    }

    #[test]
    fn valid_and_roughly_node_balanced() {
        let g = community();
        let p = GMinerPartitioner::default().partition(&g, &[], 4);
        assert_eq!(p.assignment.len(), g.num_nodes());
        let imb = metrics::balance_ratio(&p.sizes());
        assert!(imb < 1.6, "imbalance {} (sizes {:?})", imb, p.sizes());
    }

    #[test]
    fn preserves_locality_better_than_random() {
        let g = community();
        let gm = GMinerPartitioner::default().partition(&g, &[], 4);
        let rnd = RandomPartitioner::new(2).partition(&g, &[], 4);
        assert!(
            metrics::edge_cut_fraction(&g, &gm) < metrics::edge_cut_fraction(&g, &rnd)
        );
    }

    #[test]
    fn ignores_training_node_balance() {
        // Training nodes clustered in one community corner: GMiner should
        // show materially worse training balance than BGL on the same graph.
        let g = community();
        let train: Vec<NodeId> = (0..500).collect();
        let gm = GMinerPartitioner::default().partition(&g, &train, 4);
        let bgl = crate::BglPartitioner::default().partition(&g, &train, 4);
        let gm_imb = metrics::balance_ratio(&gm.counts_of(&train));
        let bgl_imb = metrics::balance_ratio(&bgl.counts_of(&train));
        assert!(
            gm_imb > bgl_imb,
            "gminer train imbalance {} should exceed bgl {}",
            gm_imb,
            bgl_imb
        );
    }
}
