//! Smoke bench for the "disabled registry is near-free" requirement.
//!
//! Compares a bare arithmetic loop against the same loop with a disabled
//! counter/span in the body, and against an enabled counter. Run with
//! `cargo bench -p bgl-obs` (or `-- --test` in CI for a quick smoke pass).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bgl_obs::Registry;

const ITERS: u64 = 10_000;

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(30);

    group.bench_function("baseline_loop", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        })
    });

    let disabled = Registry::disabled();
    let disabled_counter = disabled.counter("bench.disabled");
    group.bench_function("disabled_counter_add", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                disabled_counter.add(1);
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        })
    });

    let enabled = Registry::enabled();
    let enabled_counter = enabled.counter("bench.enabled");
    group.bench_function("enabled_counter_add", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                enabled_counter.add(1);
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        })
    });

    group.bench_function("disabled_span_scope", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                let _s = disabled.span("bench.span");
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
