//! Minimal dependency-free JSON value: render and parse.
//!
//! Used by the chrome-trace exporter and the `BENCH_profile.json` writer so
//! emitted artifacts are valid JSON regardless of how the surrounding build
//! environment provides (or stubs) serde. The parser exists for validation:
//! `parse(&rendered)` round-trips everything `render` can produce.

/// A JSON value. Numbers keep their source form: `U64`/`I64` render without
/// a decimal point, `F64` via Rust's shortest-representation `Display`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // Rust's Display for f64 never emits exponents or other
                    // forms JSON rejects; integral values print without ".0",
                    // which is still a valid JSON number.
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Field lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Accepts the full JSON grammar produced by
/// `Json::render` (and standard serializers); numbers that fit a u64/i64
/// without sign/fraction/exponent parse to the integer variants.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// Check that `input` is a valid JSON document.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: expect a \uXXXX low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source string.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let plain_int = !text.contains(['.', 'e', 'E']);
        if plain_int {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number '{}' at byte {}", text, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\n".to_string()).render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn render_parse_roundtrip() {
        let doc = Json::Obj(vec![
            ("name".to_string(), Json::Str("профиль/µs".to_string())),
            ("n".to_string(), Json::U64(3)),
            ("neg".to_string(), Json::I64(-12)),
            ("t".to_string(), Json::F64(0.125)),
            (
                "items".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(false), Json::F64(2.0)]),
            ),
            ("empty".to_string(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = parse(&text).unwrap();
        // F64(2.0) renders as "2" and re-parses as U64(2); compare via render.
        assert_eq!(back.render(), parse(&back.render()).unwrap().render());
        assert_eq!(back.get("name").unwrap().as_str(), Some("профиль/µs"));
        assert_eq!(back.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(back.get("neg").unwrap().as_f64(), Some(-12.0));
        assert_eq!(back.get("items").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn parse_standard_forms() {
        assert_eq!(parse(" [1, 2.5e1, -3] ").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert_eq!(
            parse("{\"a\": {\"b\": [true]}}")
                .unwrap()
                .get("a")
                .unwrap()
                .get("b")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] extra").is_err());
        assert!(parse("'single'").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nulle").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}
