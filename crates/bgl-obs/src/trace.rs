//! Chrome-trace (`about:tracing` / Perfetto) export.
//!
//! Emits the JSON *array* flavor of the trace event format: every recorded
//! span becomes a `"ph":"X"` complete event (timestamps/durations in
//! microseconds), and every counter, gauge, and histogram becomes a
//! `"ph":"C"` counter event stamped at export time.

use crate::json::Json;
use crate::Registry;

const PID: u64 = 1;
/// Synthetic tid for counter events so they group on one track.
const METRICS_TID: u64 = 0;

impl Registry {
    /// Render all recorded telemetry as a chrome-trace JSON array.
    /// A disabled registry renders the empty array `[]`.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<Json> = Vec::new();

        let spans = self.spans();
        let export_ts_us = spans
            .iter()
            .map(|s| s.ts_ns + s.dur_ns)
            .max()
            .unwrap_or(0) as f64
            / 1000.0;

        for span in &spans {
            events.push(Json::Obj(vec![
                ("name".to_string(), Json::Str(span.name.to_string())),
                ("cat".to_string(), Json::Str(span.cat.to_string())),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), Json::F64(span.ts_ns as f64 / 1000.0)),
                ("dur".to_string(), Json::F64(span.dur_ns as f64 / 1000.0)),
                ("pid".to_string(), Json::U64(PID)),
                ("tid".to_string(), Json::U64(span.tid)),
            ]));
        }

        for (name, value) in self.counters() {
            events.push(counter_event(
                &name,
                export_ts_us,
                vec![("value".to_string(), Json::U64(value))],
            ));
        }
        for (name, value) in self.gauges() {
            events.push(counter_event(
                &name,
                export_ts_us,
                vec![("value".to_string(), Json::I64(value))],
            ));
        }
        for (name, snap) in self.histograms() {
            events.push(counter_event(
                &name,
                export_ts_us,
                vec![
                    ("count".to_string(), Json::U64(snap.count)),
                    ("sum".to_string(), Json::U64(snap.sum)),
                    ("max".to_string(), Json::U64(snap.max)),
                    ("mean".to_string(), Json::F64(snap.mean())),
                ],
            ));
        }

        Json::Arr(events).render()
    }
}

fn counter_event(name: &str, ts_us: f64, args: Vec<(String, Json)>) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("cat".to_string(), Json::Str("metrics".to_string())),
        ("ph".to_string(), Json::Str("C".to_string())),
        ("ts".to_string(), Json::F64(ts_us)),
        ("pid".to_string(), Json::U64(PID)),
        ("tid".to_string(), Json::U64(METRICS_TID)),
        ("args".to_string(), Json::Obj(args)),
    ])
}

#[cfg(test)]
mod tests {
    use crate::json;
    use crate::Registry;

    #[test]
    fn disabled_registry_exports_empty_array() {
        assert_eq!(Registry::disabled().chrome_trace_json(), "[]");
    }

    #[test]
    fn trace_contains_spans_and_counters() {
        let reg = Registry::enabled();
        {
            let _s = reg.span("sample");
        }
        reg.counter("cache.hits").add(12);
        reg.gauge("queue.depth").set(-2);
        reg.histogram("frontier").record(100);

        let text = reg.chrome_trace_json();
        let doc = json::parse(&text).expect("exporter must emit valid JSON");
        let events = doc.as_array().unwrap();
        assert_eq!(events.len(), 4);

        let span = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("sample"))
            .unwrap();
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert!(span.get("dur").unwrap().as_f64().unwrap() >= 0.0);

        let hits = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("cache.hits"))
            .unwrap();
        assert_eq!(hits.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            hits.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(12.0)
        );

        let frontier = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("frontier"))
            .unwrap();
        assert_eq!(
            frontier.get("args").unwrap().get("count").unwrap().as_f64(),
            Some(1.0)
        );
    }
}
