//! Lightweight observability substrate for the BGL reproduction.
//!
//! The paper's §3.4 resource-isolation optimizer is *profiling-based*: it
//! consumes per-stage measurements. This crate provides the measurement
//! substrate — a metrics registry (counters, gauges, monotonic log2
//! histograms), scoped span timers, and a chrome-trace (`about:tracing` /
//! Perfetto JSON array) exporter — with one hard requirement: a *disabled*
//! registry must cost near nothing, so instrumentation can stay wired into
//! the hot data path permanently.
//!
//! Design:
//! - [`Registry`] is a cheap clonable handle. `Registry::disabled()` holds no
//!   allocation at all; every handle minted from it is a `None` and each
//!   `add`/`record` call is a branch on an `Option` (verified by the
//!   `metrics_overhead` criterion bench).
//! - Handles ([`Counter`], [`Gauge`], [`Histogram`]) are resolved once by
//!   name and then updated lock-free via atomics; the registry's name maps
//!   are only locked at registration and export time.
//! - [`Span`] is an RAII timer: it captures `Instant::now()` on creation and
//!   pushes a [`SpanRecord`] on drop. Disabled registries never touch the
//!   clock.
//! - [`Registry::chrome_trace_json`] renders every recorded span as a
//!   `"ph":"X"` complete event and every counter/gauge/histogram as a
//!   `"ph":"C"` counter event, producing a JSON array loadable by
//!   `chrome://tracing` or Perfetto.
//!
//! The crate is dependency-free; JSON is emitted (and parsed, for
//! validation) by the small [`json`] module so artifacts stay valid even in
//! build environments where serde is stubbed out.

pub mod json;
mod metrics;
mod span;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use span::{Span, SpanRecord};
