//! Metrics registry: named counters, gauges, and monotonic log2 histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::span::SpanRecord;

/// Number of log2 buckets: values 0, 1, 2..3, 4..7, ... up to `u64::MAX`.
const NUM_BUCKETS: usize = 65;

pub(crate) struct Inner {
    /// Time origin for span timestamps.
    pub(crate) epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
}

impl Inner {
    fn new() -> Self {
        Inner {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }
}

/// Handle registry for metrics and spans.
///
/// Clones share the same underlying storage. A registry is either *enabled*
/// (owns storage) or *disabled* (holds nothing); handles minted from a
/// disabled registry are inert and cost a single branch per update.
#[derive(Clone, Default)]
pub struct Registry {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Registry {
    /// A registry that records everything.
    pub fn enabled() -> Self {
        Registry {
            inner: Some(Arc::new(Inner::new())),
        }
    }

    /// A registry that records nothing; all handles are inert.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Resolve (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Resolve (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// Snapshot of every counter as `(name, value)`.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// Snapshot of every gauge as `(name, value)`.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// Snapshot of every histogram.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Number of completed spans recorded so far.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.spans.lock().unwrap().len(),
        }
    }

    /// Snapshot of every completed span.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.spans.lock().unwrap().clone(),
        }
    }
}

/// Monotonically increasing counter handle.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An inert counter, equivalent to one minted from a disabled registry.
    pub fn noop() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Point-in-time signed value handle.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub fn noop() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

pub(crate) struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Bucket index for value `v`: 0 maps to bucket 0, otherwise
/// `floor(log2 v) + 1`, so each bucket i >= 1 covers `[2^(i-1), 2^i)`.
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (saturating at `u64::MAX`).
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Monotonic histogram handle with power-of-two buckets.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub fn noop() -> Self {
        Histogram(None)
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |h| h.snapshot())
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={})", s.count, s.sum)
    }
}

/// Point-in-time view of a histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `p`-quantile (`p` in `[0, 1]`) with
    /// **upper-bound-of-bucket** semantics: walk the buckets in value
    /// order and return the inclusive upper bound of the first bucket at
    /// which the cumulative count reaches `ceil(p × count)`.
    ///
    /// The estimate therefore never *under*-reports: for any recorded
    /// sample distribution, `percentile(p)` ≥ the true p-quantile, and it
    /// overshoots by at most one power of two (the bucket width). That
    /// makes it safe for SLO accounting — a reported p99 within budget
    /// means the true p99 is within budget too. The top bucket's bound
    /// saturates at `u64::MAX`; [`HistogramSnapshot::max`] tightens it:
    /// the returned value is clamped to the true observed maximum.
    ///
    /// `p` is clamped to `[0, 1]`; an empty histogram reports 0.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the order statistic we want, 1-based: ceil(p·n), with
        // p=0 mapping to the minimum (rank 1).
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper.min(self.max);
            }
        }
        // Unreachable when bucket counts sum to `count`; be defensive
        // against a torn snapshot (counters are updated non-atomically
        // with respect to each other).
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = reg.gauge("y");
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = reg.histogram("z");
        h.record(3);
        assert_eq!(h.snapshot().count, 0);
        assert!(reg.counters().is_empty());
        assert!(reg.gauges().is_empty());
        assert!(reg.histograms().is_empty());
    }

    #[test]
    fn counter_handles_share_storage_by_name() {
        let reg = Registry::enabled();
        let a = reg.counter("cache.hits");
        let b = reg.counter("cache.hits");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(reg.counters(), vec![("cache.hits".to_string(), 7)]);
    }

    #[test]
    fn clones_share_storage() {
        let reg = Registry::enabled();
        let clone = reg.clone();
        clone.counter("n").add(2);
        assert_eq!(reg.counter("n").get(), 2);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::enabled();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(reg.gauges(), vec![("depth".to_string(), 7)]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = Registry::enabled();
        let h = reg.histogram("frontier");
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.max, 1000);
        // 0 -> bucket ub 0; 1 -> ub 1; 2,3 -> ub 3; 4 -> ub 7; 1000 -> ub 1023.
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
        assert!((s.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    /// Reference quantile: the exact order statistic at rank ceil(p·n)
    /// from a sorted copy of the samples.
    fn reference_percentile(samples: &[u64], p: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn percentile_brackets_the_reference_sort() {
        // A deterministic LCG stream spanning several orders of magnitude
        // (the shape of a latency distribution with a heavy tail).
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut samples = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Skew: mostly small values, occasional large ones.
            let v = (x >> 52) * ((x >> 32) % 17 + 1);
            samples.push(v);
        }
        let reg = Registry::enabled();
        let h = reg.histogram("lat");
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = reference_percentile(&samples, p);
            let est = s.percentile(p);
            // Upper-bound semantics: never below the true quantile…
            assert!(est >= exact, "p={p}: estimate {est} < exact {exact}");
            // …and within one log2 bucket above it (the bucket holding
            // `exact` has upper bound < 2·exact + 1).
            assert!(
                est <= exact.saturating_mul(2).saturating_add(1),
                "p={p}: estimate {est} overshoots exact {exact} by more than a bucket"
            );
        }
        // The top quantile is tightened to the true observed max, not the
        // bucket's saturated bound.
        assert_eq!(s.percentile(1.0), s.max.min(s.percentile(1.0)));
        assert!(s.percentile(1.0) <= s.max);
    }

    #[test]
    fn percentile_edge_cases() {
        let reg = Registry::enabled();
        let h = reg.histogram("edge");
        // Empty histogram reports 0 everywhere.
        assert_eq!(h.snapshot().percentile(0.5), 0);
        // A single sample is every quantile (clamped to max, so exact).
        h.record(42);
        let s = h.snapshot();
        for p in [0.0, 0.5, 1.0] {
            assert_eq!(s.percentile(p), 42);
        }
        // Out-of-range p clamps instead of panicking.
        assert_eq!(s.percentile(-1.0), 42);
        assert_eq!(s.percentile(2.0), 42);
        // All-zero samples stay at zero.
        let z = reg.histogram("zeros");
        for _ in 0..5 {
            z.record(0);
        }
        assert_eq!(z.snapshot().percentile(0.99), 0);
    }

    #[test]
    fn percentile_rank_sits_on_bucket_boundaries() {
        let reg = Registry::enabled();
        let h = reg.histogram("b");
        // 10 samples: 5× value 1 (bucket ub 1), 5× value 1000 (bucket ub 1023).
        for _ in 0..5 {
            h.record(1);
            h.record(1000);
        }
        let s = h.snapshot();
        // p=0.5 → rank 5 → still inside the first bucket.
        assert_eq!(s.percentile(0.5), 1);
        // p=0.51 → rank 6 → second bucket, clamped to the true max 1000.
        assert_eq!(s.percentile(0.51), 1000);
        assert_eq!(s.percentile(0.99), 1000);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }
}
