//! RAII span timers recorded against a [`Registry`](crate::Registry).

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Inner;
use crate::Registry;

/// Process-wide thread numbering for trace `tid` fields. Chrome-trace wants
/// small integers, not opaque OS thread ids.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A completed span, ready for trace export.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub name: Cow<'static, str>,
    pub cat: &'static str,
    /// Nanoseconds since the registry epoch.
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub tid: u64,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    name: Cow<'static, str>,
    cat: &'static str,
    start: Instant,
}

/// Scoped timer: measures from construction to drop. Inert (never reads the
/// clock) when minted from a disabled registry.
#[must_use = "a span measures until dropped; binding it to _ drops immediately"]
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// End the span now instead of at scope exit.
    pub fn end(self) {}
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(a) => write!(f, "Span({:?})", a.name),
            None => write!(f, "Span(disabled)"),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let dur_ns = active.start.elapsed().as_nanos() as u64;
            let ts_ns = active
                .start
                .saturating_duration_since(active.inner.epoch)
                .as_nanos() as u64;
            let record = SpanRecord {
                name: active.name,
                cat: active.cat,
                ts_ns,
                dur_ns,
                tid: TID.with(|t| *t),
            };
            active.inner.spans.lock().unwrap().push(record);
        }
    }
}

impl Registry {
    /// Start a span with a static name (the common, allocation-free case).
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(Cow::Borrowed(name), "bgl")
    }

    /// Start a span with a dynamically built name.
    #[inline]
    pub fn span_named(&self, name: String) -> Span {
        self.span_with(Cow::Owned(name), "bgl")
    }

    /// Start a span under an explicit chrome-trace category.
    pub fn span_with(&self, name: Cow<'static, str>, cat: &'static str) -> Span {
        Span(self.inner.as_ref().map(|inner| ActiveSpan {
            inner: Arc::clone(inner),
            name,
            cat,
            start: Instant::now(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let reg = Registry::disabled();
        {
            let _s = reg.span("noop");
        }
        assert_eq!(reg.span_count(), 0);
    }

    #[test]
    fn span_records_on_drop() {
        let reg = Registry::enabled();
        {
            let _s = reg.span("work");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert!(spans[0].dur_ns >= 1_000_000, "dur {}", spans[0].dur_ns);
        assert!(spans[0].tid >= 1);
    }

    #[test]
    fn nested_spans_both_recorded() {
        let reg = Registry::enabled();
        {
            let _outer = reg.span("outer");
            let _inner = reg.span_named(format!("inner-{}", 3));
        }
        let names: Vec<_> = reg.spans().iter().map(|s| s.name.to_string()).collect();
        assert!(names.contains(&"outer".to_string()));
        assert!(names.contains(&"inner-3".to_string()));
    }

    #[test]
    fn explicit_end_records_early() {
        let reg = Registry::enabled();
        let s = reg.span("early");
        s.end();
        assert_eq!(reg.span_count(), 1);
    }
}
