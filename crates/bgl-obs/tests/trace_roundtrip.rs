//! Validate the chrome-trace exporter against serde_json: the emitted
//! document must parse as a JSON array of event objects and survive a
//! serialize→parse round-trip. This is the CI guard ISSUE 2 asks for
//! instead of a fragile shell check.

use bgl_obs::Registry;

fn sample_trace() -> String {
    let reg = Registry::enabled();
    {
        let _outer = reg.span("experiment");
        let _inner = reg.span_named("batch-0 \"quoted\"\n".to_string());
    }
    reg.counter("store.wire_bytes").add(4096);
    reg.gauge("cache.capacity").set(1024);
    reg.histogram("sampler.frontier").record(321);
    reg.chrome_trace_json()
}

#[test]
fn chrome_trace_parses_with_serde_json() {
    let text = sample_trace();
    let value: serde_json::Value = match text.parse() {
        Ok(v) => v,
        Err(e) => panic!("chrome trace is not valid JSON: {e}\n{text}"),
    };
    // Re-serialize and parse again: a full round-trip through serde_json.
    let reserialized = serde_json::to_string(&value).expect("re-serialize");
    let reparsed: Result<serde_json::Value, _> = reserialized.parse();
    assert!(reparsed.is_ok(), "round-tripped trace failed to parse");
}

#[test]
fn chrome_trace_structure_is_event_array() {
    // Structural checks via the crate's own parser so they hold even where
    // serde_json is stubbed out by an offline build harness.
    let text = sample_trace();
    let doc = bgl_obs::json::parse(&text).expect("valid JSON");
    let events = doc.as_array().expect("top level must be an array");
    assert_eq!(events.len(), 5, "2 spans + counter + gauge + histogram");
    for event in events {
        let ph = event.get("ph").and_then(|p| p.as_str()).unwrap();
        assert!(ph == "X" || ph == "C", "unexpected phase {ph}");
        assert!(event.get("name").and_then(|n| n.as_str()).is_some());
        assert!(event.get("ts").and_then(|t| t.as_f64()).is_some());
        assert!(event.get("pid").and_then(|p| p.as_f64()).is_some());
        assert!(event.get("tid").and_then(|t| t.as_f64()).is_some());
        if ph == "X" {
            assert!(event.get("dur").and_then(|d| d.as_f64()).unwrap() >= 0.0);
        } else {
            assert!(event.get("args").is_some());
        }
    }
}

#[test]
fn empty_registry_trace_is_valid() {
    let text = Registry::disabled().chrome_trace_json();
    let value: Result<serde_json::Value, _> = text.parse();
    assert!(value.is_ok());
    assert_eq!(text, "[]");
}
