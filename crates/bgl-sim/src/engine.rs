//! Generic discrete-event engine.
//!
//! Events are closures scheduled at absolute virtual times; ties are broken
//! by scheduling order, so runs are fully deterministic. The engine is
//! deliberately minimal (the smoltcp guide's "simplicity over type tricks"):
//! components that need richer state machines (the tandem pipeline, the
//! store cluster) keep their own state and use the engine only as a clock
//! and ordered dispatcher.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// An event callback. Receives the simulator so it can schedule follow-ups.
pub type EventFn = Box<dyn FnOnce(&mut Simulator)>;

/// Discrete-event simulator: a virtual clock plus an event heap.
#[derive(Default)]
pub struct Simulator {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    events: HashMap<u64, EventFn>,
    executed: u64,
}

impl Simulator {
    /// A simulator at time zero with no pending events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` to run `delay` after the current time. Returns the event
    /// id, which can be passed to [`Simulator::cancel`].
    pub fn schedule(&mut self, delay: SimTime, f: impl FnOnce(&mut Simulator) + 'static) -> u64 {
        self.schedule_at(self.now.saturating_add(delay), f)
    }

    /// Schedule `f` at the absolute time `at` (clamped to `now` if earlier).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Simulator) + 'static) -> u64 {
        let at = at.max(self.now);
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, id)));
        self.events.insert(id, Box::new(f));
        id
    }

    /// Cancel a scheduled event. Returns true if it had not yet fired.
    pub fn cancel(&mut self, id: u64) -> bool {
        self.events.remove(&id).is_some()
    }

    /// Execute the next pending event, advancing the clock. Returns false
    /// when no events remain.
    pub fn step(&mut self) -> bool {
        while let Some(Reverse((at, id))) = self.heap.pop() {
            if let Some(f) = self.events.remove(&id) {
                self.now = at;
                self.executed += 1;
                f(self);
                return true;
            }
            // Cancelled event: skip without advancing the clock.
        }
        false
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the clock would pass `deadline` (events at exactly
    /// `deadline` still run). Pending later events are left queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.heap.peek() {
                Some(&Reverse((at, _))) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for &(delay, tag) in &[(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            sim.schedule(delay, move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), 30);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            let log = log.clone();
            sim.schedule(7, move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(0u32));
        // A self-rescheduling ticker that stops after 5 ticks.
        fn tick(sim: &mut Simulator, hits: Rc<RefCell<u32>>) {
            *hits.borrow_mut() += 1;
            if *hits.borrow() < 5 {
                let h = hits.clone();
                sim.schedule(100, move |s| tick(s, h));
            }
        }
        let h = hits.clone();
        sim.schedule(0, move |s| tick(s, h));
        sim.run();
        assert_eq!(*hits.borrow(), 5);
        assert_eq!(sim.now(), 400);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Simulator::new();
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let id = sim.schedule(10, move |_| *f.borrow_mut() = true);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run();
        assert!(!*fired.borrow());
    }

    #[test]
    fn run_until_leaves_later_events_pending() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for &d in &[5u64, 15, 25] {
            let log = log.clone();
            sim.schedule(d, move |_| log.borrow_mut().push(d));
        }
        sim.run_until(15);
        assert_eq!(*log.borrow(), vec![5, 15]);
        assert_eq!(sim.now(), 15);
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(*log.borrow(), vec![5, 15, 25]);
    }
}
