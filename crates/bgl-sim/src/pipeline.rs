//! Finite-buffer tandem-queue pipeline simulator.
//!
//! Models the paper's asynchronous GNN training pipeline (Fig. 10): a chain
//! of stages, each processing one mini-batch at a time, connected by bounded
//! buffers. A stage that finishes a batch while its output buffer is full
//! *blocks* (backpressure) — exactly the behaviour that makes the slowest
//! stage dominate end-to-end throughput and starve the GPU (§2.2).
//!
//! The simulator reports per-stage busy time, from which GPU utilization
//! (Fig. 3) falls out: utilization of the model-computation stage =
//! busy(gpu) / makespan.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Per-batch service-time function for a stage.
pub type ServiceFn = Box<dyn Fn(usize) -> SimTime>;

/// One pipeline stage: a name (for reports) and its service-time model.
pub struct StageSpec {
    pub name: String,
    pub service: ServiceFn,
}

impl StageSpec {
    /// Stage with a constant per-batch service time.
    pub fn constant(name: &str, t: SimTime) -> Self {
        StageSpec { name: name.to_string(), service: Box::new(move |_| t) }
    }

    /// Stage with an arbitrary per-batch service time.
    pub fn new(name: &str, f: impl Fn(usize) -> SimTime + 'static) -> Self {
        StageSpec { name: name.to_string(), service: Box::new(f) }
    }
}

/// Result of a pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    pub stage_names: Vec<String>,
    /// Total busy (serving) nanoseconds per stage.
    pub busy: Vec<SimTime>,
    /// Total blocked-on-downstream nanoseconds per stage.
    pub blocked: Vec<SimTime>,
    /// Completion time of each batch at the final stage.
    pub completions: Vec<SimTime>,
    /// Virtual time at which the last batch completed.
    pub makespan: SimTime,
}

impl PipelineReport {
    /// End-to-end throughput in batches per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.completions.len() as f64 / crate::as_secs(self.makespan)
    }

    /// Steady-state throughput measured over the second half of the batches
    /// (skips pipeline fill).
    pub fn steady_throughput(&self) -> f64 {
        let n = self.completions.len();
        if n < 4 {
            return self.throughput();
        }
        let mid = n / 2;
        let dt = self.completions[n - 1].saturating_sub(self.completions[mid - 1]);
        if dt == 0 {
            return self.throughput();
        }
        (n - mid) as f64 / crate::as_secs(dt)
    }

    /// Fraction of the makespan stage `i` spent actively serving.
    pub fn utilization(&self, i: usize) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy[i] as f64 / self.makespan as f64
    }

    /// Index of the stage with the highest busy time — the bottleneck.
    pub fn bottleneck(&self) -> usize {
        self.busy
            .iter()
            .enumerate()
            .max_by_key(|&(_, &b)| b)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

struct StageState {
    /// Batch being served and its finish time.
    busy: Option<(usize, SimTime)>,
    /// Time at which the current service started (for busy accounting).
    started: SimTime,
    /// Batch finished but waiting for downstream buffer space: (batch, since).
    held: Option<(usize, SimTime)>,
    /// Input buffer feeding this stage (unused for stage 0).
    input: VecDeque<usize>,
    busy_total: SimTime,
    blocked_total: SimTime,
}

struct Runner<'a> {
    stages: &'a [StageSpec],
    caps: &'a [usize],
    states: Vec<StageState>,
    next_source: usize,
    num_batches: usize,
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    completions: Vec<SimTime>,
}

impl<'a> Runner<'a> {
    /// Start stage `i` if it is idle, unblocked, and has input available.
    fn try_start(&mut self, i: usize, now: SimTime) {
        if self.states[i].busy.is_some() || self.states[i].held.is_some() {
            return;
        }
        let batch = if i == 0 {
            if self.next_source >= self.num_batches {
                return;
            }
            let b = self.next_source;
            self.next_source += 1;
            b
        } else {
            match self.states[i].input.pop_front() {
                Some(b) => {
                    // A slot just freed in the buffer feeding stage i: if
                    // stage i-1 holds a blocked batch, deliver it now.
                    self.unblock(i - 1, now);
                    b
                }
                None => return,
            }
        };
        let dt = (self.stages[i].service)(batch);
        self.states[i].busy = Some((batch, now + dt));
        self.states[i].started = now;
        self.heap.push(Reverse((now + dt, i)));
    }

    /// Release stage `u`'s held batch into the (just-freed) buffer feeding
    /// stage `u + 1`, and let `u` resume.
    fn unblock(&mut self, u: usize, now: SimTime) {
        if let Some((held_batch, since)) = self.states[u].held.take() {
            self.states[u].blocked_total += now - since;
            self.states[u + 1].input.push_back(held_batch);
            self.try_start(u, now);
        }
    }

    /// Handle a stage-finish event.
    fn on_finish(&mut self, i: usize, now: SimTime) {
        let (batch, finish) = self.states[i].busy.take().expect("finish without busy");
        debug_assert_eq!(finish, now);
        let started = self.states[i].started;
        self.states[i].busy_total += now - started;
        if i + 1 == self.stages.len() {
            self.completions.push(now);
        } else if self.states[i + 1].input.len() < self.caps[i] {
            self.states[i + 1].input.push_back(batch);
            self.try_start(i + 1, now);
        } else {
            self.states[i].held = Some((batch, now));
        }
        self.try_start(i, now);
    }
}

/// The tandem pipeline simulator. Construct with stage specs and buffer
/// capacities, then call [`TandemPipeline::run`].
pub struct TandemPipeline {
    stages: Vec<StageSpec>,
    /// `caps[i]` is the capacity (≥ 1) of the buffer between stage `i` and
    /// `i + 1`; length must be `stages.len() - 1`.
    caps: Vec<usize>,
}

impl TandemPipeline {
    /// Build a pipeline. `caps.len()` must equal `stages.len() - 1` and all
    /// capacities must be ≥ 1.
    pub fn new(stages: Vec<StageSpec>, caps: Vec<usize>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        assert_eq!(caps.len(), stages.len() - 1, "need one buffer per stage gap");
        assert!(caps.iter().all(|&c| c >= 1), "buffer capacities must be >= 1");
        TandemPipeline { stages, caps }
    }

    /// Convenience: uniform buffer capacity between all stages.
    pub fn with_uniform_buffers(stages: Vec<StageSpec>, cap: usize) -> Self {
        let n = stages.len();
        TandemPipeline::new(stages, vec![cap.max(1); n.saturating_sub(1)])
    }

    /// Build a pipeline from *measured* mean service times (nanoseconds per
    /// batch) and per-stage worker-pool sizes: a pool of `w` workers drains
    /// its input up to `w`× faster, so it is modelled as a single server
    /// with service time `t / w` (linear pool scaling). This is how the
    /// threaded executor in `bgl-exec` feeds its profile back into the
    /// tandem-queue model for the predicted-vs-measured validation.
    pub fn from_measured(
        names: &[&str],
        service_ns: &[u64],
        workers: &[usize],
        cap: usize,
    ) -> Self {
        assert_eq!(names.len(), service_ns.len(), "one service time per stage");
        assert_eq!(names.len(), workers.len(), "one pool size per stage");
        let stages = names
            .iter()
            .zip(service_ns.iter())
            .zip(workers.iter())
            .map(|((name, &t), &w)| StageSpec::constant(name, t / w.max(1) as SimTime))
            .collect();
        TandemPipeline::with_uniform_buffers(stages, cap)
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Simulate `num_batches` flowing through the pipeline.
    pub fn run(&self, num_batches: usize) -> PipelineReport {
        let k = self.stages.len();
        let mut runner = Runner {
            stages: &self.stages,
            caps: &self.caps,
            states: (0..k)
                .map(|_| StageState {
                    busy: None,
                    started: 0,
                    held: None,
                    input: VecDeque::new(),
                    busy_total: 0,
                    blocked_total: 0,
                })
                .collect(),
            next_source: 0,
            num_batches,
            heap: BinaryHeap::new(),
            completions: Vec::with_capacity(num_batches),
        };
        runner.try_start(0, 0);
        while let Some(Reverse((now, i))) = runner.heap.pop() {
            runner.on_finish(i, now);
        }
        let makespan = runner.completions.last().copied().unwrap_or(0);
        PipelineReport {
            stage_names: self.stages.iter().map(|s| s.name.clone()).collect(),
            busy: runner.states.iter().map(|s| s.busy_total).collect(),
            blocked: runner.states.iter().map(|s| s.blocked_total).collect(),
            completions: runner.completions,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MILLISECOND as MS;

    #[test]
    fn single_stage_throughput() {
        let p = TandemPipeline::new(vec![StageSpec::constant("only", 10 * MS)], vec![]);
        let r = p.run(10);
        assert_eq!(r.completions.len(), 10);
        assert_eq!(r.makespan, 100 * MS);
        assert!((r.throughput() - 100.0).abs() < 1.0);
    }

    #[test]
    fn all_batches_complete_in_order() {
        let p = TandemPipeline::with_uniform_buffers(
            vec![
                StageSpec::constant("a", 3 * MS),
                StageSpec::constant("b", 5 * MS),
                StageSpec::constant("c", 2 * MS),
            ],
            2,
        );
        let r = p.run(50);
        assert_eq!(r.completions.len(), 50);
        for w in r.completions.windows(2) {
            assert!(w[0] < w[1], "completions out of order");
        }
    }

    #[test]
    fn bottleneck_dominates() {
        let p = TandemPipeline::with_uniform_buffers(
            vec![
                StageSpec::constant("fast-in", MS),
                StageSpec::constant("slow", 10 * MS),
                StageSpec::constant("fast-out", MS),
            ],
            4,
        );
        let r = p.run(100);
        assert_eq!(r.bottleneck(), 1);
        assert!(
            (r.steady_throughput() - 100.0).abs() < 5.0,
            "steady {} should be ~100",
            r.steady_throughput()
        );
        assert!(r.utilization(1) > 0.95);
        assert!(r.utilization(0) < 0.2);
    }

    #[test]
    fn upstream_blocks_on_slow_downstream() {
        let p = TandemPipeline::with_uniform_buffers(
            vec![
                StageSpec::constant("producer", MS),
                StageSpec::constant("consumer", 10 * MS),
            ],
            1,
        );
        let r = p.run(20);
        // Producer must accumulate blocked time waiting for the consumer.
        assert!(r.blocked[0] > 0, "producer never blocked");
        assert_eq!(r.completions.len(), 20);
    }

    #[test]
    fn deeper_buffers_do_not_change_steady_state() {
        let mk = |cap| {
            TandemPipeline::with_uniform_buffers(
                vec![
                    StageSpec::constant("a", 2 * MS),
                    StageSpec::constant("b", 4 * MS),
                ],
                cap,
            )
            .run(200)
            .steady_throughput()
        };
        let shallow = mk(1);
        let deep = mk(16);
        assert!(
            (shallow - deep).abs() / deep < 0.05,
            "steady-state should match: {} vs {}",
            shallow,
            deep
        );
    }

    #[test]
    fn variable_service_times() {
        // Alternating light/heavy batches: throughput equals the mean rate.
        let p = TandemPipeline::new(
            vec![StageSpec::new("var", |b| if b % 2 == 0 { MS } else { 3 * MS })],
            vec![],
        );
        let r = p.run(100);
        // 50 * 1ms + 50 * 3ms = 200ms.
        assert_eq!(r.makespan, 200 * MS);
    }

    #[test]
    fn gpu_utilization_shape_matches_paper_motivation() {
        // Paper §2.2: preprocessing ~10x the GPU time ⇒ GPU utilization ~10%.
        let p = TandemPipeline::with_uniform_buffers(
            vec![
                StageSpec::constant("preprocess", 200 * MS),
                StageSpec::constant("gpu", 20 * MS),
            ],
            2,
        );
        let r = p.run(50);
        let gpu_util = r.utilization(1);
        assert!(
            (gpu_util - 0.1).abs() < 0.03,
            "gpu util {} should be ~0.10",
            gpu_util
        );
    }

    #[test]
    fn from_measured_divides_service_time_by_pool_size() {
        // A 4-worker 40ms stage behaves like a 10ms server: the 10ms
        // downstream stage, not the pool, sets the bottleneck pace.
        let p = TandemPipeline::from_measured(
            &["pool", "sink"],
            &[40 * MS, 10 * MS],
            &[4, 1],
            2,
        );
        let r = p.run(40);
        let thr = r.steady_throughput();
        assert!(
            (thr - 100.0).abs() < 5.0,
            "steady throughput {} should be ~100 batches/s",
            thr
        );
    }
}
