//! Network accounting for the distributed graph store.
//!
//! `bgl-store` executes RPCs for real (actual neighbor lists and feature
//! bytes move between partition servers and workers); this module converts
//! those message sizes into *simulated wire time* and keeps per-flow traffic
//! statistics — the quantities behind Table 3 (sampling time per epoch) and
//! Fig. 14 (feature retrieving time).

use crate::devices::LinkSpec;
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Cumulative traffic counters for one direction of one flow.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    pub messages: u64,
    pub bytes: u64,
    /// Total simulated wire time spent by these messages.
    pub wire_time: SimTime,
}

impl TrafficStats {
    /// Fold another counter into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.wire_time += other.wire_time;
    }
}

/// A network model: one link spec per locality class.
///
/// * `local` — sampler colocated with the store server (intra-process);
/// * `remote` — cross-server traffic over the NIC.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    pub local: LinkSpec,
    pub remote: LinkSpec,
}

impl NetworkModel {
    /// The paper's fabric: colocated samplers talk through shared memory,
    /// cross-server traffic rides the 100 Gbps NIC.
    pub fn paper_fabric() -> Self {
        NetworkModel { local: LinkSpec::loopback(), remote: LinkSpec::nic_100g() }
    }

    /// Cost of a message of `bytes` between `src` and `dst` servers.
    pub fn message_time(&self, src: usize, dst: usize, bytes: usize) -> SimTime {
        if src == dst {
            self.local.transfer_time(bytes)
        } else {
            self.remote.transfer_time(bytes)
        }
    }

    /// Cost of a request/response pair (request `req` bytes, response
    /// `resp` bytes).
    pub fn rpc_time(&self, src: usize, dst: usize, req: usize, resp: usize) -> SimTime {
        self.message_time(src, dst, req) + self.message_time(dst, src, resp)
    }
}

/// Mutable traffic ledger, separating local and remote flows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrafficLedger {
    pub local: TrafficStats,
    pub remote: TrafficStats,
}

impl TrafficLedger {
    /// Record one message and return its simulated wire time.
    pub fn record(
        &mut self,
        model: &NetworkModel,
        src: usize,
        dst: usize,
        bytes: usize,
    ) -> SimTime {
        let t = model.message_time(src, dst, bytes);
        let stats = if src == dst { &mut self.local } else { &mut self.remote };
        stats.messages += 1;
        stats.bytes += bytes as u64;
        stats.wire_time += t;
        t
    }

    /// Total bytes moved across both classes.
    pub fn total_bytes(&self) -> u64 {
        self.local.bytes + self.remote.bytes
    }

    /// Fraction of bytes that crossed servers.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.remote.bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_is_cheaper_than_remote() {
        let net = NetworkModel::paper_fabric();
        let bytes = 10 << 20;
        assert!(net.message_time(0, 0, bytes) < net.message_time(0, 1, bytes));
    }

    #[test]
    fn rpc_is_two_messages() {
        let net = NetworkModel::paper_fabric();
        let rpc = net.rpc_time(0, 1, 100, 1 << 20);
        assert_eq!(
            rpc,
            net.message_time(0, 1, 100) + net.message_time(1, 0, 1 << 20)
        );
    }

    #[test]
    fn ledger_classifies_flows() {
        let net = NetworkModel::paper_fabric();
        let mut ledger = TrafficLedger::default();
        ledger.record(&net, 0, 0, 1000);
        ledger.record(&net, 0, 1, 3000);
        assert_eq!(ledger.local.messages, 1);
        assert_eq!(ledger.remote.messages, 1);
        assert_eq!(ledger.total_bytes(), 4000);
        assert!((ledger.remote_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats { messages: 1, bytes: 10, wire_time: 5 };
        let b = TrafficStats { messages: 2, bytes: 20, wire_time: 7 };
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 30);
        assert_eq!(a.wire_time, 12);
    }
}
