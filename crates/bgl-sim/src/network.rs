//! Network accounting for the distributed graph store.
//!
//! `bgl-store` executes RPCs for real (actual neighbor lists and feature
//! bytes move between partition servers and workers); this module converts
//! those message sizes into *simulated wire time* and keeps per-flow traffic
//! statistics — the quantities behind Table 3 (sampling time per epoch) and
//! Fig. 14 (feature retrieving time).

use crate::devices::LinkSpec;
use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Cumulative traffic counters for one direction of one flow.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    pub messages: u64,
    pub bytes: u64,
    /// Total simulated wire time spent by these messages.
    pub wire_time: SimTime,
}

impl TrafficStats {
    /// Fold another counter into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.wire_time += other.wire_time;
    }
}

/// A network model: one link spec per locality class.
///
/// * `local` — sampler colocated with the store server (intra-process);
/// * `remote` — cross-server traffic over the NIC.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    pub local: LinkSpec,
    pub remote: LinkSpec,
}

impl NetworkModel {
    /// The paper's fabric: colocated samplers talk through shared memory,
    /// cross-server traffic rides the 100 Gbps NIC.
    pub fn paper_fabric() -> Self {
        NetworkModel { local: LinkSpec::loopback(), remote: LinkSpec::nic_100g() }
    }

    /// Cost of a message of `bytes` between `src` and `dst` servers.
    pub fn message_time(&self, src: usize, dst: usize, bytes: usize) -> SimTime {
        if src == dst {
            self.local.transfer_time(bytes)
        } else {
            self.remote.transfer_time(bytes)
        }
    }

    /// Cost of a request/response pair (request `req` bytes, response
    /// `resp` bytes).
    pub fn rpc_time(&self, src: usize, dst: usize, req: usize, resp: usize) -> SimTime {
        self.message_time(src, dst, req) + self.message_time(dst, src, resp)
    }
}

/// Reliability counters for a fault-tolerant data path: retries, failovers,
/// circuit-breaker activity, degraded deliveries, and recovery time. Kept
/// next to [`TrafficLedger`] so robustness rides the same report path as
/// traffic accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessStats {
    /// Request attempts repeated after a transient failure.
    pub retries: u64,
    /// Requests rerouted from a primary server to a replica.
    pub failovers: u64,
    /// Requests dropped in flight (fault injection).
    pub drops: u64,
    /// Response frames that failed their integrity check.
    pub corrupt_frames: u64,
    /// Per-request retry budgets exhausted within the batch deadline.
    pub deadline_misses: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
    /// Half-open probes sent through a cooling-down breaker.
    pub breaker_probes: u64,
    /// Feature batches that fell back to zero rows (graceful degradation).
    pub degraded_batches: u64,
    /// Individual feature rows served as zeros.
    pub degraded_rows: u64,
    /// Requests re-routed after a `NotOwner` hint (stale owner map chased
    /// a migrated node; the hint redirected it instead of hanging).
    pub redirects: u64,
    /// Simulated time spent waiting in retry backoff.
    pub backoff_time: SimTime,
    /// Simulated time from a breaker opening until it closed again.
    pub recovery_time: SimTime,
}

impl RobustnessStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &RobustnessStats) {
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.drops += other.drops;
        self.corrupt_frames += other.corrupt_frames;
        self.deadline_misses += other.deadline_misses;
        self.breaker_opens += other.breaker_opens;
        self.breaker_probes += other.breaker_probes;
        self.degraded_batches += other.degraded_batches;
        self.degraded_rows += other.degraded_rows;
        self.redirects += other.redirects;
        self.backoff_time += other.backoff_time;
        self.recovery_time += other.recovery_time;
    }

    /// Whether any fault was observed at all.
    pub fn any_faults(&self) -> bool {
        *self != RobustnessStats::default()
    }
}

/// Exponential backoff for attempt `attempt` (0-based): `base << attempt`,
/// saturating, capped at `cap`. Charged to the simulated clock so retries
/// cost virtual time exactly like wire traffic does.
pub fn exponential_backoff(base: SimTime, cap: SimTime, attempt: u32) -> SimTime {
    base.saturating_mul(1u64.checked_shl(attempt).unwrap_or(SimTime::MAX)).min(cap)
}

/// Mutable traffic ledger, separating local and remote flows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrafficLedger {
    pub local: TrafficStats,
    pub remote: TrafficStats,
}

impl TrafficLedger {
    /// Record one message and return its simulated wire time.
    pub fn record(
        &mut self,
        model: &NetworkModel,
        src: usize,
        dst: usize,
        bytes: usize,
    ) -> SimTime {
        self.record_scaled(model, src, dst, bytes, 1.0)
    }

    /// Record one message whose wire time is stretched by `latency_mult`
    /// (slow-server fault injection): the bytes on the wire are unchanged,
    /// but the time charged to the clock grows.
    pub fn record_scaled(
        &mut self,
        model: &NetworkModel,
        src: usize,
        dst: usize,
        bytes: usize,
        latency_mult: f64,
    ) -> SimTime {
        let base = model.message_time(src, dst, bytes);
        let t = (base as f64 * latency_mult.max(0.0)).round() as SimTime;
        let stats = if src == dst { &mut self.local } else { &mut self.remote };
        stats.messages += 1;
        stats.bytes += bytes as u64;
        stats.wire_time += t;
        t
    }

    /// Total bytes moved across both classes.
    pub fn total_bytes(&self) -> u64 {
        self.local.bytes + self.remote.bytes
    }

    /// Fraction of bytes that crossed servers.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.remote.bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_is_cheaper_than_remote() {
        let net = NetworkModel::paper_fabric();
        let bytes = 10 << 20;
        assert!(net.message_time(0, 0, bytes) < net.message_time(0, 1, bytes));
    }

    #[test]
    fn rpc_is_two_messages() {
        let net = NetworkModel::paper_fabric();
        let rpc = net.rpc_time(0, 1, 100, 1 << 20);
        assert_eq!(
            rpc,
            net.message_time(0, 1, 100) + net.message_time(1, 0, 1 << 20)
        );
    }

    #[test]
    fn ledger_classifies_flows() {
        let net = NetworkModel::paper_fabric();
        let mut ledger = TrafficLedger::default();
        ledger.record(&net, 0, 0, 1000);
        ledger.record(&net, 0, 1, 3000);
        assert_eq!(ledger.local.messages, 1);
        assert_eq!(ledger.remote.messages, 1);
        assert_eq!(ledger.total_bytes(), 4000);
        assert!((ledger.remote_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn scaled_record_stretches_time_not_bytes() {
        let net = NetworkModel::paper_fabric();
        let mut a = TrafficLedger::default();
        let mut b = TrafficLedger::default();
        let t1 = a.record(&net, 0, 1, 4096);
        let t4 = b.record_scaled(&net, 0, 1, 4096, 4.0);
        assert_eq!(t4, t1 * 4);
        assert_eq!(a.remote.bytes, b.remote.bytes);
        assert_eq!(b.remote.wire_time, t4);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b0 = exponential_backoff(50_000, 5_000_000, 0);
        let b1 = exponential_backoff(50_000, 5_000_000, 1);
        let b2 = exponential_backoff(50_000, 5_000_000, 2);
        assert_eq!(b0, 50_000);
        assert_eq!(b1, 100_000);
        assert_eq!(b2, 200_000);
        assert_eq!(exponential_backoff(50_000, 5_000_000, 20), 5_000_000);
        // Saturation, not overflow, at absurd attempt counts.
        assert_eq!(exponential_backoff(50_000, SimTime::MAX, 90), SimTime::MAX);
    }

    #[test]
    fn robustness_stats_merge_and_default() {
        let mut a = RobustnessStats::default();
        assert!(!a.any_faults());
        let b = RobustnessStats { retries: 2, failovers: 1, backoff_time: 100, ..Default::default() };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.retries, 4);
        assert_eq!(a.failovers, 2);
        assert_eq!(a.backoff_time, 200);
        assert!(a.any_faults());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats { messages: 1, bytes: 10, wire_time: 5 };
        let b = TrafficStats { messages: 2, bytes: 20, wire_time: 7 };
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 30);
        assert_eq!(a.wire_time, 12);
    }
}
