//! Hardware cost models.
//!
//! These stand in for the paper's testbed (§5.1): Tesla V100-SXM2-32GB GPUs
//! connected by NVLink inside one server, PCIe 3.0 x16 to the host, 96-vCPU
//! graph-store servers, and a 100 Gbps Mellanox CX-5 fabric. The constants
//! are calibrated against figures the paper itself reports:
//!
//! * a GraphSAGE mini-batch computes in ≈ 20 ms on a V100 (§2.2);
//! * one mini-batch carries ≈ 5 MB of subgraph structure + 195 MB of
//!   features (batch 1000, fanout {15,10,5}, Ogbn-products) (§2.2);
//! * a saturated 100 Gbps NIC therefore feeds at most ≈ 60 batches/s (§2.2).

use crate::{secs, SimTime};
use serde::{Deserialize, Serialize};

/// A point-to-point link: fixed per-message latency plus serialization at
/// `bandwidth` bytes/second.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    pub name_tag: LinkKind,
    /// One-way latency per message.
    pub latency: SimTime,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

/// Which physical link a [`LinkSpec`] models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    Pcie3x16,
    NvLink,
    Nic100G,
    Loopback,
}

impl LinkSpec {
    /// PCIe 3.0 x16: ~12.8 GB/s effective, ~5 µs submission latency.
    pub fn pcie3_x16() -> Self {
        LinkSpec {
            name_tag: LinkKind::Pcie3x16,
            latency: 5_000,
            bandwidth_bps: 12.8e9,
        }
    }

    /// One NVLink 2.0 lane pair as on V100: ~46 GB/s effective, ~2 µs.
    pub fn nvlink() -> Self {
        LinkSpec {
            name_tag: LinkKind::NvLink,
            latency: 2_000,
            bandwidth_bps: 46.0e9,
        }
    }

    /// 100 Gbps NIC: ~11 GB/s effective after protocol overhead, ~10 µs RTT
    /// contribution each way.
    pub fn nic_100g() -> Self {
        LinkSpec {
            name_tag: LinkKind::Nic100G,
            latency: 10_000,
            bandwidth_bps: 11.0e9,
        }
    }

    /// Free intra-process transfer (colocated sampler and store).
    pub fn loopback() -> Self {
        LinkSpec { name_tag: LinkKind::Loopback, latency: 200, bandwidth_bps: 80.0e9 }
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        self.latency + secs(bytes as f64 / self.bandwidth_bps)
    }

    /// Time to move `bytes` when `flows` transfers share the link fairly.
    pub fn transfer_time_shared(&self, bytes: usize, flows: usize) -> SimTime {
        let flows = flows.max(1) as f64;
        self.latency + secs(bytes as f64 * flows / self.bandwidth_bps)
    }
}

/// GPU device model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Usable device memory in bytes.
    pub memory_bytes: usize,
    /// Dense f32 throughput in FLOP/s actually achieved by GNN kernels
    /// (well below peak — GNN kernels are memory-bound).
    pub effective_flops: f64,
    /// Device memory bandwidth in bytes/s (bounds gather/scatter kernels).
    pub mem_bandwidth_bps: f64,
    /// Fixed per-kernel launch overhead.
    pub kernel_launch: SimTime,
}

impl GpuSpec {
    /// Tesla V100-SXM2-32GB, with effective GNN throughput calibrated so a
    /// standard GraphSAGE mini-batch lands at ≈ 20 ms (§2.2).
    pub fn v100_32g() -> Self {
        GpuSpec {
            memory_bytes: 32 * (1 << 30),
            effective_flops: 2.0e12,
            mem_bandwidth_bps: 700.0e9,
            kernel_launch: 8_000,
        }
    }

    /// Time to execute a workload of `flops` floating-point operations that
    /// touches `bytes` of device memory: max of the compute and memory
    /// roofline, plus launch overhead.
    pub fn kernel_time(&self, flops: f64, bytes: usize) -> SimTime {
        let compute = flops / self.effective_flops;
        let memory = bytes as f64 / self.mem_bandwidth_bps;
        self.kernel_launch + secs(compute.max(memory))
    }
}

/// CPU pool model: linear scaling with core count (the paper assumes linear
/// CPU acceleration for all stages except the cache stage, §3.4).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CpuPoolSpec {
    pub cores: usize,
    /// Single-core work throughput, expressed as "work units" per second.
    /// A work unit is whatever the caller profiles (e.g. sampling one node).
    pub unit_rate: f64,
}

impl CpuPoolSpec {
    /// Time for `units` of perfectly parallel work on `cores_used` cores.
    pub fn time(&self, units: f64, cores_used: usize) -> SimTime {
        let cores = cores_used.clamp(1, self.cores) as f64;
        secs(units / (self.unit_rate * cores))
    }
}

/// The full machine the worker runs on — everything `bgl-exec` needs to
/// turn data volumes into stage times.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineSpec {
    pub gpu: GpuSpec,
    pub num_gpus: usize,
    pub pcie: LinkSpec,
    pub nvlink: LinkSpec,
    pub nic: LinkSpec,
    /// Worker-machine CPU cores (paper: 96 vCPU).
    pub worker_cores: usize,
    /// Graph-store-server CPU cores (paper: 96 vCPU).
    pub store_cores: usize,
}

impl MachineSpec {
    /// The paper's GPU server: 8×V100, PCIe 3.0, NVLink, 100 Gbps NIC,
    /// 96 vCPUs on both worker and store machines.
    pub fn paper_testbed() -> Self {
        MachineSpec {
            gpu: GpuSpec::v100_32g(),
            num_gpus: 8,
            pcie: LinkSpec::pcie3_x16(),
            nvlink: LinkSpec::nvlink(),
            nic: LinkSpec::nic_100g(),
            worker_cores: 96,
            store_cores: 96,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{as_secs, MILLISECOND};

    #[test]
    fn nic_feeds_about_60_batches_per_second() {
        // Paper §2.2: 200 MB per batch over 100 Gbps ⇒ ~60 batches/s.
        let nic = LinkSpec::nic_100g();
        let per_batch = nic.transfer_time(200 * (1 << 20));
        let batches_per_sec = 1.0 / as_secs(per_batch);
        assert!(
            (50.0..70.0).contains(&batches_per_sec),
            "got {} batches/s",
            batches_per_sec
        );
    }

    #[test]
    fn graphsage_batch_is_about_20ms() {
        // ~400K nodes/batch, 3 layers, dim ~100→128: ≈ 3e10 flops touching
        // ~600 MB of activations/weights.
        let gpu = GpuSpec::v100_32g();
        let t = gpu.kernel_time(3.0e10, 600 * (1 << 20));
        assert!(
            (10 * MILLISECOND..40 * MILLISECOND).contains(&t),
            "kernel time {} ms",
            t / MILLISECOND
        );
    }

    #[test]
    fn nvlink_beats_pcie() {
        let bytes = 100 << 20;
        assert!(
            LinkSpec::nvlink().transfer_time(bytes)
                < LinkSpec::pcie3_x16().transfer_time(bytes)
        );
    }

    #[test]
    fn shared_link_slows_down_proportionally() {
        let pcie = LinkSpec::pcie3_x16();
        let solo = pcie.transfer_time(1 << 30);
        let shared = pcie.transfer_time_shared(1 << 30, 2);
        assert!(shared > solo);
        // Roughly 2x once latency is negligible.
        let ratio = (shared - pcie.latency) as f64 / (solo - pcie.latency) as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {}", ratio);
    }

    #[test]
    fn cpu_pool_scales_linearly_and_clamps() {
        let pool = CpuPoolSpec { cores: 8, unit_rate: 1000.0 };
        let one = pool.time(8000.0, 1);
        let four = pool.time(8000.0, 4);
        let over = pool.time(8000.0, 64); // clamped to 8
        assert_eq!(one / 4, four);
        assert_eq!(over, pool.time(8000.0, 8));
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let nic = LinkSpec::nic_100g();
        assert_eq!(nic.transfer_time(0), nic.latency);
    }
}
