//! # bgl-sim — discrete-event simulation core and hardware device models
//!
//! The paper's testbed (8×V100 over NVLink, PCIe 3.0, 100 Gbps NICs) is not
//! available here, so throughput experiments run on *virtual time*: this
//! crate provides
//!
//! * [`engine::Simulator`] — a generic discrete-event engine (event heap,
//!   deterministic tie-breaking by schedule order);
//! * [`pipeline::TandemPipeline`] — a finite-buffer tandem-queue simulator
//!   modelling the paper's 8-stage asynchronous training pipeline (Fig. 10):
//!   per-stage service times, bounded inter-stage buffers, backpressure,
//!   per-stage busy-time accounting (⇒ GPU utilization, Fig. 3);
//! * [`devices`] — cost models for the V100 GPU, PCIe/NVLink links and the
//!   100 Gbps NIC, calibrated to the numbers the paper itself reports
//!   (GraphSAGE mini-batch ≈ 20 ms on a V100; 195 MB of features per batch
//!   saturating a 100 Gbps NIC at ~60 batches/s);
//! * [`network::NetworkModel`] — latency + bandwidth accounting used by the
//!   distributed graph store in `bgl-store` to convert message sizes into
//!   simulated wire time.
//!
//! All simulated time is in nanoseconds ([`SimTime`]) and fully
//! deterministic.

pub mod devices;
pub mod engine;
pub mod network;
pub mod pipeline;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// One second in [`SimTime`] units.
pub const SECOND: SimTime = 1_000_000_000;

/// One millisecond in [`SimTime`] units.
pub const MILLISECOND: SimTime = 1_000_000;

/// One microsecond in [`SimTime`] units.
pub const MICROSECOND: SimTime = 1_000;

/// Convert a duration in seconds (f64) to [`SimTime`], saturating.
pub fn secs(s: f64) -> SimTime {
    (s * SECOND as f64).round().max(0.0) as SimTime
}

/// Convert [`SimTime`] to seconds.
pub fn as_secs(t: SimTime) -> f64 {
    t as f64 / SECOND as f64
}
