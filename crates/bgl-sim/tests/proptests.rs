//! Property-based tests for the simulation core: conservation and
//! monotonicity laws of the tandem pipeline and device models.

use bgl_sim::devices::{CpuPoolSpec, GpuSpec, LinkSpec};
use bgl_sim::engine::Simulator;
use bgl_sim::pipeline::{StageSpec, TandemPipeline};
use bgl_sim::MICROSECOND;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// All injected batches complete, in order, and the makespan is at
    /// least the bottleneck lower bound and at most the serial upper bound.
    #[test]
    fn pipeline_conservation_and_bounds(
        times in proptest::collection::vec(1u64..50, 1..6),
        cap in 1usize..5,
        batches in 1usize..40,
    ) {
        let stages: Vec<StageSpec> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| StageSpec::constant(&format!("s{}", i), t * MICROSECOND))
            .collect();
        let p = TandemPipeline::with_uniform_buffers(stages, cap);
        let r = p.run(batches);
        prop_assert_eq!(r.completions.len(), batches);
        for w in r.completions.windows(2) {
            prop_assert!(w[0] < w[1], "completions out of order");
        }
        let bottleneck = *times.iter().max().unwrap() * MICROSECOND;
        let serial: u64 = times.iter().map(|&t| t * MICROSECOND).sum();
        // Lower bound: the bottleneck must serve every batch.
        prop_assert!(r.makespan >= bottleneck * batches as u64);
        // Upper bound: fully serial execution.
        prop_assert!(r.makespan <= serial * batches as u64);
        // Busy time of each stage is exactly its total service demand.
        for (i, &t) in times.iter().enumerate() {
            prop_assert_eq!(r.busy[i], t * MICROSECOND * batches as u64);
        }
    }

    /// Deeper buffers never hurt throughput.
    #[test]
    fn buffers_monotone(
        times in proptest::collection::vec(1u64..30, 2..5),
    ) {
        let run = |cap: usize| {
            let stages: Vec<StageSpec> = times
                .iter()
                .map(|&t| StageSpec::constant("s", t * MICROSECOND))
                .collect();
            TandemPipeline::with_uniform_buffers(stages, cap).run(50).makespan
        };
        prop_assert!(run(4) <= run(1), "deeper buffers increased makespan");
    }

    /// Transfer time is monotone in bytes and latency-dominated at zero.
    #[test]
    fn link_transfer_monotone(b1 in 0usize..1_000_000, b2 in 0usize..1_000_000) {
        for link in [LinkSpec::pcie3_x16(), LinkSpec::nvlink(), LinkSpec::nic_100g()] {
            let (lo, hi) = (b1.min(b2), b1.max(b2));
            prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
            prop_assert_eq!(link.transfer_time(0), link.latency);
        }
    }

    /// GPU kernel time is monotone in both flops and bytes.
    #[test]
    fn kernel_time_monotone(f1 in 0.0f64..1e12, f2 in 0.0f64..1e12, b in 0usize..1_000_000_000) {
        let gpu = GpuSpec::v100_32g();
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        prop_assert!(gpu.kernel_time(lo, b) <= gpu.kernel_time(hi, b));
    }

    /// CPU pool: double the cores, at most half the (above-launch) time.
    #[test]
    fn cpu_pool_scaling(units in 1.0f64..1e6, cores in 1usize..32) {
        let pool = CpuPoolSpec { cores: 64, unit_rate: 1e6 };
        let t1 = pool.time(units, cores);
        let t2 = pool.time(units, cores * 2);
        prop_assert!(t2 <= t1);
    }

    /// The event engine executes exactly the scheduled (non-cancelled)
    /// events, in non-decreasing time order.
    #[test]
    fn engine_executes_all_events(delays in proptest::collection::vec(0u64..1000, 1..50)) {
        let mut sim = Simulator::new();
        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &delays {
            let fired = fired.clone();
            sim.schedule(d, move |s| fired.borrow_mut().push(s.now()));
        }
        sim.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut expect = delays.clone();
        expect.sort_unstable();
        prop_assert_eq!(&*fired, &expect);
    }
}
