//! End-to-end acceptance tests for streaming ingestion:
//!
//! * the same churn schedule driven through an in-process cluster and a
//!   real-TCP cluster leaves both serving bitwise-identical training
//!   epochs (sampled blocks and feature bytes), even when only one side
//!   has compacted its delta;
//! * a crash in the middle of a churn stream is fully replayable from the
//!   per-server WALs — graph structure and feature rows both.

use bgl_graph::generate::{self, CommunityConfig};
use bgl_graph::{Csr, DynamicGraph, FeatureStore, NodeId};
use bgl_ingest::{ChurnOp, ChurnPlan, IngestConfig, IngestCoordinator};
use bgl_net::{spawn_loopback_cluster, NetClientConfig, NetServerConfig, TcpTransport};
use bgl_obs::Registry;
use bgl_partition::{LdgPartitioner, Partition, Partitioner};
use bgl_sim::network::NetworkModel;
use bgl_store::{DiskTierConfig, DurableFeatures, InProcessTransport, StoreCluster};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

const N: usize = 400;
const DIM: usize = 4;
const SEED: u64 = 5;

fn dataset() -> (Arc<Csr>, Arc<FeatureStore>, Partition) {
    let g = Arc::new(generate::community_graph(
        CommunityConfig { n: N, communities: 8, intra: 6, inter: 1 },
        13,
    ));
    let mut f = FeatureStore::zeros(N, DIM);
    for v in 0..N as u32 {
        f.row_mut(v)[0] = v as f32;
    }
    let p = LdgPartitioner::new(5).partition(&g, &[], 2);
    (g, Arc::new(f), p)
}

fn tier_cfg() -> DiskTierConfig {
    DiskTierConfig::default().with_page_size(64).with_pool_pages(8)
}

fn temp_dir(tag: &str, i: usize) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("bgl-ingest-it-{}-{}-{}", std::process::id(), tag, i));
    dir
}

fn cleanup(dirs: &[PathBuf]) {
    for dir in dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// A training epoch after quiesced ingest must not depend on the
/// transport: drive the same churn plan through an in-process cluster and
/// through real TCP sockets, then compare every sampled block and every
/// fetched feature byte. The in-process side additionally re-merges before
/// the epoch, so the comparison also proves compaction changes nothing.
#[test]
fn epoch_after_quiesced_ingest_is_bitwise_identical_over_tcp() {
    let (g, f, p) = dataset();
    let owner = Arc::new(p.assignment.clone());
    let k = p.k;
    let reg = Registry::enabled();

    // In-process cluster with durable tiers (feature updates need them).
    let transport = InProcessTransport::new(g.clone(), f.clone(), owner.clone(), k, SEED);
    let mut dirs = Vec::new();
    for i in 0..k {
        let dir = temp_dir("inproc", i);
        let tier = DurableFeatures::create(&dir, &f, tier_cfg()).unwrap();
        transport.server(i).unwrap().attach_disk_tier(tier);
        dirs.push(dir);
    }
    let mut local =
        StoreCluster::with_transport(Box::new(transport), owner.clone(), NetworkModel::paper_fabric());

    // TCP cluster over loopback sockets, same dataset, same server seed.
    let lc = spawn_loopback_cluster(
        g.clone(),
        f.clone(),
        owner.clone(),
        k,
        SEED,
        NetServerConfig::default(),
        &reg,
    )
    .unwrap();
    for i in 0..k {
        let dir = temp_dir("tcp", i);
        let tier = DurableFeatures::create(&dir, &f, tier_cfg()).unwrap();
        lc.store(i).unwrap().attach_disk_tier(tier);
        dirs.push(dir);
    }
    let tcp = TcpTransport::connect(&lc.addrs(), NetClientConfig::default(), &reg).unwrap();
    let mut remote =
        StoreCluster::with_transport(Box::new(tcp), owner, NetworkModel::paper_fabric());

    // Same plan, both sides; every op must ack identically.
    let mut coord_l = IngestCoordinator::new(&p, IngestConfig::default());
    let mut coord_r = IngestCoordinator::new(&p, IngestConfig::default());
    let schedule = ChurnPlan::new(77).ops(150).mix(5, 3, 2).schedule(N, DIM);
    for (i, op) in schedule.iter().enumerate() {
        let a = coord_l.apply(&mut local, None, op).unwrap();
        let b = coord_r.apply(&mut remote, None, op).unwrap();
        assert_eq!(a, b, "op {i} acked differently across transports");
    }
    assert_eq!(coord_l.report().applied, coord_r.report().applied);
    assert_eq!(coord_l.report().rejected, coord_r.report().rejected);
    assert_eq!(local.total_nodes(), remote.total_nodes());
    assert!(local.total_nodes() > N, "churn must have grown the graph");

    // Quiesce. Only the local side compacts — re-merging is
    // semantics-preserving, so the epochs must still match.
    let mut order = Vec::new();
    coord_l
        .remerge(&mut local, &mut order, &[])
        .expect("in-process cluster yields the merged graph");

    // One seeded training epoch over the grown node set, on both sides.
    let total = local.total_nodes() as u32;
    let train: Vec<NodeId> = (0..total).step_by(5).collect();
    let wl = local.worker_location();
    let wr = remote.worker_location();
    for (step, chunk) in train.chunks(8).enumerate() {
        let salt = 0xA11CE ^ step as u64;
        let (mb_l, _) = local.sample_batch_seeded(&[3, 2], chunk, 0, salt).unwrap();
        let (mb_r, _) = remote.sample_batch_seeded(&[3, 2], chunk, 0, salt).unwrap();
        assert_eq!(mb_l.blocks, mb_r.blocks, "sampled blocks diverged at step {step}");

        let (fb_l, _) = local.fetch_features(chunk, wl).unwrap();
        let (fb_r, _) = remote.fetch_features(chunk, wr).unwrap();
        let (bytes_l, bytes_r) = (fb_l.to_vec(), fb_r.to_vec());
        assert_eq!(bytes_l.len(), bytes_r.len());
        for (i, (a, b)) in bytes_l.iter().zip(&bytes_r).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "feature byte {i} of step {step} diverged: {a} vs {b}"
            );
        }
    }

    lc.shutdown();
    cleanup(&dirs);
}

/// Crash a cluster mid-churn and rebuild everything from the WALs: the
/// merged graph from any server's pending records, and every mutated
/// feature row from its owner's tier.
#[test]
fn mid_ingest_crash_replays_graph_and_rows_from_wal() {
    let (g, f, p) = dataset();
    let owner = Arc::new(p.assignment.clone());
    let k = p.k;
    let transport = InProcessTransport::new(g.clone(), f.clone(), owner.clone(), k, SEED);
    let mut dirs = Vec::new();
    for i in 0..k {
        let dir = temp_dir("crash", i);
        let tier = DurableFeatures::create(&dir, &f, tier_cfg()).unwrap();
        transport.server(i).unwrap().attach_disk_tier(tier);
        dirs.push(dir);
    }
    let mut cluster =
        StoreCluster::with_transport(Box::new(transport), owner.clone(), NetworkModel::paper_fabric());
    let mut coord = IngestCoordinator::new(&p, IngestConfig::default());

    // Apply only a prefix of the plan — the crash lands mid-stream.
    let schedule = ChurnPlan::new(99).ops(200).mix(5, 3, 2).schedule(N, DIM);
    let prefix = &schedule[..130];
    let mut updated_base: Vec<NodeId> = Vec::new();
    for op in prefix {
        coord.apply(&mut cluster, None, op).unwrap();
        if let ChurnOp::UpdateFeature { v, .. } = op {
            if (*v as usize) < N {
                updated_base.push(*v);
            }
        }
    }
    updated_base.sort_unstable();
    updated_base.dedup();
    assert!(!updated_base.is_empty(), "prefix must update some base rows");

    // Capture the pre-crash truth: merged adjacency and every mutated row.
    let total = cluster.total_nodes();
    assert!(total > N, "prefix must append some nodes");
    let merged = cluster.in_process_server(0).unwrap().remerge();
    let adjacency: Vec<Vec<NodeId>> =
        (0..total as u32).map(|v| merged.neighbors(v).to_vec()).collect();
    let wl = cluster.worker_location();
    let mut expected_rows: BTreeMap<NodeId, Vec<f32>> = BTreeMap::new();
    for v in (N as u32..total as u32).chain(updated_base.iter().copied()) {
        let (row, _) = cluster.fetch_features(&[v], wl).unwrap();
        expected_rows.insert(v, row.to_vec());
    }
    let owner_of = |v: NodeId| -> usize {
        if (v as usize) < N {
            owner[v as usize] as usize
        } else {
            coord.assigner().part_of(v).unwrap() as usize
        }
    };

    // Crash: drop the cluster without a checkpoint. The WALs survive.
    drop(cluster);

    // Reopen every tier and replay.
    let mut tiers = Vec::new();
    for dir in &dirs {
        let (tier, report) = DurableFeatures::open(dir, tier_cfg()).unwrap();
        assert!(report.replayed_nodes > 0, "appends must replay: {report:?}");
        assert!(report.replayed_edges > 0, "edges must replay: {report:?}");
        assert_eq!(report.torn_wal_bytes, 0);
        tiers.push(tier);
    }

    // Graph: every server journals every structural mutation (write-all),
    // so server 0's pending records alone rebuild the merged adjacency.
    let mut rebuilt = DynamicGraph::new(g.clone());
    for (id, _, _) in tiers[0].pending_nodes() {
        while (rebuilt.num_nodes() as u32) <= *id {
            rebuilt.add_node();
        }
    }
    for &(u, v) in tiers[0].pending_edges() {
        rebuilt.add_edge(u, v);
    }
    let rebuilt = rebuilt.snapshot();
    assert_eq!(rebuilt.num_nodes(), total);
    assert_eq!(rebuilt.num_edges(), merged.num_edges());
    for v in 0..total as u32 {
        assert_eq!(
            rebuilt.neighbors(v),
            &adjacency[v as usize][..],
            "adjacency of {v} diverged after replay"
        );
    }

    // Rows: appended nodes recover from their owner's pending records
    // (last record wins — updates of appended nodes re-journal the row),
    // updated base nodes from the owner's pager after WAL redo.
    for (&v, expected) in &expected_rows {
        let tier = &mut tiers[owner_of(v)];
        let got: Vec<f32> = if (v as usize) < N {
            let mut row = Vec::new();
            tier.read_row_into(v, &mut row).unwrap();
            row
        } else {
            tier.pending_nodes()
                .iter()
                .rev()
                .find(|(id, _, _)| *id == v)
                .map(|(_, _, row)| row.clone())
                .unwrap_or_else(|| panic!("node {v} missing from owner WAL"))
        };
        assert_eq!(got.len(), expected.len());
        for (i, (a, b)) in got.iter().zip(expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {v} float {i}: {a} vs {b}");
        }
    }

    drop(tiers);
    cleanup(&dirs);
}
