//! The ingest coordinator: applies churn to a live cluster and keeps the
//! derived state honest.
//!
//! One [`IngestCoordinator::apply`] call drives a single [`ChurnOp`]
//! end-to-end through the ordering the design doc (§17) pins down:
//!
//! 1. **Store first.** The mutation is broadcast write-all through
//!    [`StoreCluster`], which journals WAL-first on every server. Nothing
//!    below happens unless the store acked.
//! 2. **Placement.** Node arrivals are placed by the [`OnlineAssigner`]
//!    *before* the store call (the store needs the owner), which is safe
//!    because a failed broadcast aborts the whole apply and the logical
//!    map is only grown on success.
//! 3. **Cache invalidation.** Feature updates drop the row from every
//!    attached cache level — after the store commit, so a concurrent
//!    refill can only ever re-admit the new row.
//!
//! Periodically ([`IngestConfig::remerge_period`] applied ops) the
//! coordinator runs [`IngestCoordinator::remerge`]: compact every
//! in-process server's delta, run the assigner's local refinement over the
//! dirty nodes, repair the proximity-aware training order incrementally,
//! and drain up to [`IngestConfig::moves_per_period`] of the refinement's
//! moves through the store's crash-safe migration protocol so the physical
//! placement follows the logical map (DESIGN.md §18). Everything is
//! counted in `ingest.*` and `migrate.*` metric sets.

use crate::assign::OnlineAssigner;
use crate::churn::ChurnOp;
use crate::migrate::MigrationPlanner;
use crate::reorder::incremental_po_reorder;
use bgl_cache::FeatureCacheEngine;
use bgl_graph::{Csr, NodeId};
use bgl_obs::{Counter, Histogram, Registry};
use bgl_partition::metrics::{balance_ratio, edge_cut_fraction};
use bgl_partition::{Partition, Partitioner};
use bgl_store::{StoreCluster, StoreError};
use std::sync::Arc;

/// Knobs for the coordinator.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Applied ops between re-merge passes; 0 disables periodic merging
    /// (callers can still invoke [`IngestCoordinator::remerge`] manually).
    pub remerge_period: usize,
    /// Capacity slack for the online assigner (≥ 1.0).
    pub capacity_slack: f64,
    /// Physical migrations drained per re-merge pass — the rate limit on
    /// the [`MigrationPlanner`] that moves bytes after the refinement pass
    /// moves the logical map. 0 disables physical migration (logical-only,
    /// the pre-migration behavior).
    pub moves_per_period: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { remerge_period: 64, capacity_slack: 1.1, moves_per_period: 8 }
    }
}

/// `ingest.*` observability: counters plus the apply-latency histogram
/// (simulated nanoseconds per applied op, as reported by the store's
/// network model). Inert by default, like every other metric set.
#[derive(Clone, Debug, Default)]
struct IngestMetricSet {
    applied: Counter,
    rejected: Counter,
    invalidations: Counter,
    reassignments: Counter,
    remerges: Counter,
    apply_latency_ns: Histogram,
}

impl IngestMetricSet {
    fn attach(reg: &Registry) -> Self {
        IngestMetricSet {
            applied: reg.counter("ingest.applied"),
            rejected: reg.counter("ingest.rejected"),
            invalidations: reg.counter("ingest.invalidations"),
            reassignments: reg.counter("ingest.reassignments"),
            remerges: reg.counter("ingest.remerges"),
            apply_latency_ns: reg.histogram("ingest.apply_latency_ns"),
        }
    }
}

/// Plain-value mirror of the counters, for reports and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Mutations the store acked (edges inserted, nodes appended, rows
    /// updated).
    pub applied: u64,
    /// Idempotent rejections (duplicate edges).
    pub rejected: u64,
    /// Cache rows dropped by invalidation.
    pub invalidations: u64,
    /// Nodes the refinement pass moved to another logical partition.
    pub reassignments: u64,
    /// Re-merge passes run.
    pub remerges: u64,
}

/// Post-churn partition quality, measured against a from-scratch
/// repartition of the same merged graph.
#[derive(Clone, Copy, Debug)]
pub struct ChurnQuality {
    /// Edge-cut fraction of the online (streamed + refined) map.
    pub online_cut: f64,
    /// Edge-cut fraction of the from-scratch repartition.
    pub scratch_cut: f64,
    /// Balance ratio (max/mean) of the online map.
    pub online_balance: f64,
    /// Balance ratio of the from-scratch repartition.
    pub scratch_balance: f64,
}

/// Applies [`ChurnOp`]s to a [`StoreCluster`], maintaining the logical
/// partition map, the feature cache, and the training order as it goes.
pub struct IngestCoordinator {
    assigner: OnlineAssigner,
    planner: MigrationPlanner,
    config: IngestConfig,
    applied_since_merge: usize,
    metrics: IngestMetricSet,
    report: IngestReport,
}

impl IngestCoordinator {
    /// Seed from the offline partition the cluster was built with.
    pub fn new(partition: &Partition, config: IngestConfig) -> Self {
        IngestCoordinator {
            assigner: OnlineAssigner::new(partition, config.capacity_slack),
            planner: MigrationPlanner::new(config.moves_per_period),
            config,
            applied_since_merge: 0,
            metrics: IngestMetricSet::default(),
            report: IngestReport::default(),
        }
    }

    /// Mirror the `ingest.*` and `migrate.*` counters into `reg`.
    pub fn attach_metrics(&mut self, reg: &Registry) {
        self.metrics = IngestMetricSet::attach(reg);
        self.planner.attach_metrics(reg);
    }

    pub fn report(&self) -> IngestReport {
        self.report
    }

    pub fn assigner(&self) -> &OnlineAssigner {
        &self.assigner
    }

    /// The migration planner driving physical rebalancing (read access,
    /// for its `migrate.*` report and backlog depth).
    pub fn planner(&self) -> &MigrationPlanner {
        &self.planner
    }

    /// True when enough ops have been applied that the caller should run
    /// [`IngestCoordinator::remerge`].
    pub fn remerge_due(&self) -> bool {
        self.config.remerge_period > 0
            && self.applied_since_merge >= self.config.remerge_period
    }

    /// Apply one op through the cluster. `cache` (when attached) is kept
    /// coherent with feature updates. Returns the store-acked apply count
    /// for the op (0 when it was a pure duplicate).
    pub fn apply(
        &mut self,
        cluster: &mut StoreCluster,
        cache: Option<&mut FeatureCacheEngine>,
        op: &ChurnOp,
    ) -> Result<u64, StoreError> {
        let from = cluster.worker_location();
        match op {
            ChurnOp::AddEdge { u, v } => {
                let (applied, rejected, elapsed) =
                    cluster.ingest_add_edges(&[(*u, *v)], from)?;
                self.record(applied as u64, rejected as u64, elapsed);
                Ok(applied as u64)
            }
            ChurnOp::AddNode { neighbors, row } => {
                // Score first, commit after the broadcast acked — a failed
                // store call must not grow the logical map.
                let owner = self.assigner.choose(neighbors);
                let (id, elapsed) = cluster.ingest_add_node(owner, row, from)?;
                self.assigner.admit(owner);
                let mut applied = 1u64; // the node itself
                let mut rejected = 0u64;
                let mut total_elapsed = elapsed;
                if !neighbors.is_empty() {
                    let edges: Vec<(NodeId, NodeId)> =
                        neighbors.iter().map(|&n| (id, n)).collect();
                    let (a, r, e2) = cluster.ingest_add_edges(&edges, from)?;
                    applied += a as u64;
                    rejected += r as u64;
                    total_elapsed += e2;
                }
                self.record(applied, rejected, total_elapsed);
                Ok(applied)
            }
            ChurnOp::UpdateFeature { v, row } => {
                let (applied, elapsed) = cluster.update_features(&[*v], row, from)?;
                self.record(applied as u64, 0, elapsed);
                if let Some(cache) = cache {
                    let dropped = cache.invalidate(&[*v]);
                    self.report.invalidations += dropped;
                    self.metrics.invalidations.add(dropped);
                }
                Ok(applied as u64)
            }
        }
    }

    fn record(&mut self, applied: u64, rejected: u64, elapsed: bgl_sim::SimTime) {
        self.report.applied += applied;
        self.report.rejected += rejected;
        self.metrics.applied.add(applied);
        self.metrics.rejected.add(rejected);
        if applied > 0 {
            self.applied_since_merge += 1;
            self.metrics.apply_latency_ns.record(elapsed);
        }
    }

    /// Run the re-merge pass: compact every in-process server's delta into
    /// a fresh base CSR, refine the logical map over the dirty nodes, and
    /// incrementally repair `train_order` (train nodes whose neighborhoods
    /// changed, plus `added_train` newcomers). Returns the merged graph
    /// from server 0, or `None` for a fully remote cluster — re-merging is
    /// sampling-semantics-preserving, so remote servers may compact on
    /// their own schedule without a control frame.
    ///
    /// Equivalent to [`IngestCoordinator::remerge_with_cache`] with no
    /// cache attached: physical migrations still drain, but there are no
    /// cache entries to invalidate.
    pub fn remerge(
        &mut self,
        cluster: &mut StoreCluster,
        train_order: &mut Vec<NodeId>,
        added_train: &[NodeId],
    ) -> Option<Arc<Csr>> {
        self.remerge_with_cache(cluster, None, train_order, added_train)
    }

    /// [`IngestCoordinator::remerge`], plus the physical follow-through:
    /// the refinement pass's moves are queued on the [`MigrationPlanner`]
    /// and up to [`IngestConfig::moves_per_period`] of them drain through
    /// the store's crash-safe migration protocol, with commit-first
    /// invalidation of `cache` for every committed move.
    pub fn remerge_with_cache(
        &mut self,
        cluster: &mut StoreCluster,
        cache: Option<&mut FeatureCacheEngine>,
        train_order: &mut Vec<NodeId>,
        added_train: &[NodeId],
    ) -> Option<Arc<Csr>> {
        let mut merged: Option<Arc<Csr>> = None;
        let mut dirty: Vec<NodeId> = Vec::new();
        for i in 0..cluster.num_servers() {
            let Some(server) = cluster.in_process_server(i) else {
                continue;
            };
            if merged.is_none() {
                dirty = server.dirty_nodes();
            }
            let m = server.remerge();
            if merged.is_none() {
                merged = Some(m);
            }
        }
        self.applied_since_merge = 0;
        self.report.remerges += 1;
        self.metrics.remerges.incr();
        let g = merged.as_ref()?;
        let moves = self.assigner.refine_moves(g, &dirty);
        self.report.reassignments += moves.len() as u64;
        self.metrics.reassignments.add(moves.len() as u64);
        incremental_po_reorder(g, train_order, &dirty, added_train);
        // The logical map moved; now the bytes follow, rate-limited so
        // rebalance traffic stays a bounded tax on the period.
        self.planner.plan(&moves);
        self.planner.drain(cluster, cache);
        merged
    }

    /// Measure the online map against a from-scratch repartition of the
    /// merged graph by `scratch` (typically the partitioner that built the
    /// base map). The bench's churn experiment pins bands on these.
    pub fn quality(&self, merged: &Csr, scratch: &dyn Partitioner) -> ChurnQuality {
        let online = self.assigner.partition();
        let fresh = scratch.partition(merged, &[], self.assigner.k());
        ChurnQuality {
            online_cut: edge_cut_fraction(merged, &online),
            scratch_cut: edge_cut_fraction(merged, &fresh),
            online_balance: balance_ratio(&online.sizes()),
            scratch_balance: balance_ratio(&fresh.sizes()),
        }
    }
}
