//! # bgl-ingest — streaming graph mutation for the live BGL system
//!
//! The paper's pipeline assumes a frozen graph; real deployments re-ingest
//! their graphs continuously (new users, new interactions, refreshed
//! embeddings). This crate makes the reproduced system *mutable* without
//! giving up any of its invariants:
//!
//! * [`churn`] — seeded, declarative churn schedules ([`ChurnPlan`], the
//!   `FaultPlan` idiom): node arrivals with their edges, edge inserts
//!   between existing nodes, and full-row feature updates, reproducible
//!   from the plan alone;
//! * [`assign`] — [`OnlineAssigner`], the LDG placement rule applied
//!   per-arrival against a growing per-partition capacity, plus the
//!   periodic local refinement pass that claws back locality churn erodes;
//! * [`migrate`] — [`MigrationPlanner`], the rate-limited backlog drain
//!   that pushes each refinement move through the store's crash-safe
//!   four-phase migration protocol, so the *physical* placement follows
//!   the refined logical map instead of drifting from it;
//! * [`reorder`] — [`incremental_po_reorder`], repairing the proximity-
//!   aware training order for exactly the train nodes whose neighborhoods
//!   changed;
//! * [`coordinator`] — [`IngestCoordinator`], which drives the store's
//!   write-all ingest broadcasts (WAL-first on every server), invalidates
//!   the feature cache after committed updates, runs re-merge passes, and
//!   accounts everything under `ingest.*` metrics.
//!
//! The flow for one churn op:
//!
//! ```text
//!   ChurnPlan ──op──▶ IngestCoordinator
//!                        │ 1. OnlineAssigner.choose (arrivals)
//!                        │ 2. StoreCluster broadcast (WAL-first, all servers)
//!                        │ 3. OnlineAssigner.admit / cache.invalidate
//!                        ▼
//!            every `remerge_period` applied ops:
//!            server.remerge() → refine_moves(dirty) → incremental_po_reorder
//!                                      └─▶ MigrationPlanner.drain (≤ moves_per_period
//!                                          crash-safe owner migrations, commit-first
//!                                          cache invalidation)
//! ```

pub mod assign;
pub mod churn;
pub mod coordinator;
pub mod migrate;
pub mod reorder;

pub use assign::OnlineAssigner;
pub use churn::{ChurnOp, ChurnPlan};
pub use coordinator::{ChurnQuality, IngestConfig, IngestCoordinator, IngestReport};
pub use migrate::{MigrateReport, MigrationPlanner};
pub use reorder::incremental_po_reorder;

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_cache::{FeatureCacheEngine, PolicyKind};
    use bgl_graph::generate::{self, CommunityConfig};
    use bgl_graph::{Csr, FeatureStore, NodeId};
    use bgl_partition::{LdgPartitioner, Partitioner};
    use bgl_sampler::TrainOrdering;
    use bgl_sim::network::NetworkModel;
    use bgl_store::{DiskTierConfig, DurableFeatures, InProcessTransport, StoreCluster};
    use std::path::PathBuf;
    use std::sync::Arc;

    const DIM: usize = 4;

    /// Cluster with a durable tier on every server (feature updates land
    /// on the WAL) partitioned by LDG. Callers remove the returned dirs.
    fn setup(k: usize, tag: &str) -> (Arc<Csr>, StoreCluster, IngestCoordinator, Vec<PathBuf>) {
        setup_cfg(k, tag, IngestConfig::default())
    }

    fn setup_cfg(
        k: usize,
        tag: &str,
        cfg: IngestConfig,
    ) -> (Arc<Csr>, StoreCluster, IngestCoordinator, Vec<PathBuf>) {
        let g = Arc::new(generate::community_graph(
            CommunityConfig { n: 400, communities: 8, intra: 6, inter: 1 },
            13,
        ));
        let mut f = FeatureStore::zeros(400, DIM);
        for v in 0..400u32 {
            f.row_mut(v)[0] = v as f32;
        }
        let f = Arc::new(f);
        let p = LdgPartitioner::new(5).partition(&g, &[], k);
        let owner = Arc::new(p.assignment.clone());
        let transport = InProcessTransport::new(g.clone(), f.clone(), owner.clone(), k, 5);
        let mut dirs = Vec::new();
        for i in 0..k {
            let mut dir = std::env::temp_dir();
            dir.push(format!("bgl-ingest-{}-{}-{}", std::process::id(), tag, i));
            let cfg = DiskTierConfig::default().with_page_size(64).with_pool_pages(8);
            let tier = DurableFeatures::create(&dir, &f, cfg).unwrap();
            transport.server(i).unwrap().attach_disk_tier(tier);
            dirs.push(dir);
        }
        let cluster = StoreCluster::with_transport(
            Box::new(transport),
            owner,
            NetworkModel::paper_fabric(),
        );
        let coord = IngestCoordinator::new(&p, cfg);
        (g, cluster, coord, dirs)
    }

    fn cleanup(dirs: Vec<PathBuf>) {
        for dir in dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn churn_flows_end_to_end_with_coherent_cache() {
        let (_, mut cluster, mut coord, dirs) = setup(2, "flow");
        let reg = bgl_obs::Registry::enabled();
        coord.attach_metrics(&reg);
        let mut cache = FeatureCacheEngine::new(1, DIM, 64, 0, PolicyKind::Lru, &[]);
        let w = cluster.worker_location();

        // Warm the cache with node 7's pre-churn row.
        let (rows, _) = cluster.fetch_features(&[7], w).unwrap();
        cache.fetch_batch(0, &[7], &mut |_ids| rows.to_vec());

        let plan = ChurnPlan::new(21).ops(120).mix(5, 3, 2);
        let schedule = plan.schedule(cluster.total_nodes(), DIM);
        let mut saw_update_of_7 = false;
        for op in &schedule {
            if matches!(op, ChurnOp::UpdateFeature { v: 7, .. }) {
                saw_update_of_7 = true;
            }
            coord.apply(&mut cluster, Some(&mut cache), op).unwrap();
        }
        let report = coord.report();
        assert!(report.applied > 100, "most ops must land: {:?}", report);
        assert!(cluster.total_nodes() > 400, "arrivals grew the graph");
        assert_eq!(
            coord.assigner().num_nodes(),
            cluster.total_nodes(),
            "logical map tracks the store"
        );

        // Cache coherence: a fresh fetch of any updated node returns the
        // store's current row, not the warmed one.
        if saw_update_of_7 {
            assert!(report.invalidations > 0);
        }
        let (fresh, _) = cluster.fetch_features(&[7], w).unwrap();
        let store_row = fresh.to_vec();
        let res = cache.fetch_batch(0, &[7], &mut |_ids| store_row.clone());
        assert_eq!(res.features, store_row, "cache serves the committed row");

        // Counters mirror the report.
        let counters: std::collections::BTreeMap<_, _> =
            reg.counters().into_iter().collect();
        assert_eq!(counters["ingest.applied"], report.applied);
        assert_eq!(counters["ingest.rejected"], report.rejected);
        assert_eq!(counters["ingest.invalidations"], report.invalidations);
        let hists: std::collections::BTreeMap<_, _> =
            reg.histograms().into_iter().collect();
        assert!(hists["ingest.apply_latency_ns"].count > 0);
        assert!(hists["ingest.apply_latency_ns"].mean() > 0.0);
        cleanup(dirs);
    }

    #[test]
    fn remerge_keeps_quality_near_scratch_and_repairs_order() {
        let (g, mut cluster, mut coord, dirs) = setup(4, "quality");
        let train: Vec<NodeId> = (0..400).step_by(4).collect();
        let mut order = bgl_sampler::ProximityAware::new(3, 9).epoch_order(&g, &train, 0);
        let schedule = ChurnPlan::new(33).ops(400).mix(6, 3, 1).schedule(400, DIM);
        let mut added_train: Vec<NodeId> = Vec::new();
        let mut merged = None;
        for op in &schedule {
            let before = cluster.total_nodes();
            coord.apply(&mut cluster, None, op).unwrap();
            // Every 4th streamed node joins the train set.
            let now = cluster.total_nodes();
            if now > before && now.is_multiple_of(4) {
                added_train.push((now - 1) as NodeId);
            }
            if coord.remerge_due() {
                merged = coord.remerge(&mut cluster, &mut order, &added_train);
                added_train.clear();
            }
        }
        let merged = coord
            .remerge(&mut cluster, &mut order, &added_train)
            .or(merged)
            .expect("in-process cluster must yield the merged graph");
        let report = coord.report();
        assert!(report.remerges > 1);
        assert!(report.reassignments > 0, "refinement must move something");

        // The order is still a permutation of the grown train set.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), order.len(), "no duplicates after repair");
        assert!(order.len() >= train.len());

        // Quality band: the online map stays within an additive band of a
        // from-scratch LDG repartition of the merged graph.
        let q = coord.quality(&merged, &LdgPartitioner::new(5));
        assert!(
            q.online_cut <= q.scratch_cut + 0.20,
            "online cut {:.3} drifted too far from scratch {:.3}",
            q.online_cut,
            q.scratch_cut
        );
        assert!(
            q.online_balance <= q.scratch_balance + 0.25,
            "online balance {:.3} vs scratch {:.3}",
            q.online_balance,
            q.scratch_balance
        );
        // And the store itself reflects the merged view.
        assert_eq!(merged.num_nodes(), cluster.total_nodes());
        cleanup(dirs);
    }

    #[test]
    fn remerge_migrates_bytes_to_follow_the_logical_map() {
        // An unbounded move budget must leave the physical owner of every
        // node equal to the assigner's logical map after the final drain —
        // the exact drift PR 9 deferred and the planner exists to close.
        let cfg = IngestConfig { remerge_period: 32, capacity_slack: 1.1, moves_per_period: 4096 };
        let (_, mut cluster, mut coord, dirs) = setup_cfg(3, "migrate", cfg);
        // No feature updates in the mix: base rows keep their seeded
        // values, so a migrated row's bytes are checkable by eye.
        let schedule = ChurnPlan::new(51).ops(200).mix(5, 3, 0).schedule(400, DIM);
        let mut order = Vec::new();
        for op in &schedule {
            coord.apply(&mut cluster, None, op).unwrap();
            if coord.remerge_due() {
                coord.remerge(&mut cluster, &mut order, &[]);
            }
        }
        coord.remerge(&mut cluster, &mut order, &[]);
        let r = coord.planner().report();
        assert!(r.committed > 0, "refinement must drive physical moves: {r:?}");
        assert_eq!(r.aborted, 0, "no faults injected, so no aborts: {r:?}");
        assert_eq!(coord.planner().backlog_len(), 0, "budget covers the backlog");
        assert!(r.copy_bytes > 0);
        let total = cluster.total_nodes() as u32;
        for v in 0..total {
            assert_eq!(
                cluster.owner_of(v).unwrap() as u32,
                coord.assigner().part_of(v).unwrap(),
                "physical owner of {v} must match the logical map"
            );
        }
        // Migrated base rows read back bitwise through the new placement.
        let w = cluster.worker_location();
        let mut checked = 0;
        for v in (0..400u32).step_by(7) {
            let (row, _) = cluster.fetch_features(&[v], w).unwrap();
            assert_eq!(row.to_vec()[0], v as f32, "row {v} after migration");
            checked += 1;
        }
        assert!(checked > 50);
        cleanup(dirs);
    }

    #[test]
    fn sampling_is_identical_across_a_remerge() {
        // Re-merging is semantics-preserving: the same seeded batch
        // samples identically before and after compaction.
        let (_, mut cluster, mut coord, dirs) = setup(2, "remerge");
        let schedule = ChurnPlan::new(3).ops(60).mix(1, 1, 0).schedule(400, DIM);
        for op in &schedule {
            coord.apply(&mut cluster, None, op).unwrap();
        }
        let salt = 0xFEED;
        let (before, _) =
            cluster.sample_batch_seeded(&[3, 2], &[1, 2, 3], 0, salt).unwrap();
        let mut order = Vec::new();
        coord.remerge(&mut cluster, &mut order, &[]);
        let (after, _) =
            cluster.sample_batch_seeded(&[3, 2], &[1, 2, 3], 0, salt).unwrap();
        assert_eq!(before.blocks, after.blocks);
        cleanup(dirs);
    }
}
