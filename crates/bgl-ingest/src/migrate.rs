//! The migration planner: rate-limited physical data movement behind the
//! logical refinement pass.
//!
//! [`crate::assign::OnlineAssigner::refine_moves`] improves the *logical*
//! partition map; [`MigrationPlanner`] makes the bytes follow. Every move
//! the refinement pass emits is queued on a backlog, and each re-merge
//! period drains at most [`MigrationPlanner::moves_per_period`] of them
//! through [`bgl_store::StoreCluster::migrate_node`] — the crash-safe
//! four-phase protocol (prepare → copy → commit → tombstone). Bounding the
//! drain keeps rebalancing traffic a small, predictable tax on each period
//! instead of a thundering herd after a churn burst; the backlog carries
//! the rest forward.
//!
//! Failure handling follows the protocol's abort rule:
//!
//! * a move that fails *before* its commit point is confirmed aborted by
//!   [`bgl_store::StoreCluster::repair_migration`] and **dropped** — the
//!   old owner stayed authoritative, nothing drifted, and a later
//!   refinement pass re-discovers the move if it still pays;
//! * a move that fails *after* its commit point is repaired forward by the
//!   same call (the idempotent commit broadcast + tombstone re-drive) and
//!   counts as committed;
//! * a move whose repair is itself *ambiguous* (the repair RPC failed, so
//!   neither outcome is confirmed) is parked on a pending-repairs queue
//!   and retried first on every later drain — dropping it could strand a
//!   half-broadcast commit, which would leave server owner views diverged
//!   forever. Repairs are idempotent, so retrying until the fault clears
//!   is always safe.
//!
//! Cache invalidation is **commit-first** (DESIGN.md §18): the migrated
//! node's cache entry is dropped only after the protocol reports the new
//! owner authoritative. Right up to the commit the cached bytes are valid
//! — source and destination hold identical rows — so invalidating earlier
//! would only cost hits, and invalidating an *aborted* move is skipped
//! entirely.
//!
//! Everything is accounted under `migrate.*` metrics: planned / committed
//! / aborted / repaired / skipped counters, copied payload bytes, and
//! per-phase simulated-latency histograms.

use bgl_cache::FeatureCacheEngine;
use bgl_graph::NodeId;
use bgl_obs::{Counter, Histogram, Registry};
use bgl_store::{Migration, StoreCluster};
use std::collections::VecDeque;

/// `migrate.*` observability. Inert by default, like every other metric
/// set in the repo.
#[derive(Clone, Debug, Default)]
struct MigrateMetricSet {
    planned: Counter,
    committed: Counter,
    aborted: Counter,
    repaired: Counter,
    requeued: Counter,
    skipped: Counter,
    copy_bytes: Counter,
    invalidations: Counter,
    prepare_ns: Histogram,
    copy_ns: Histogram,
    commit_ns: Histogram,
    tombstone_ns: Histogram,
    total_ns: Histogram,
}

impl MigrateMetricSet {
    fn attach(reg: &Registry) -> Self {
        MigrateMetricSet {
            planned: reg.counter("migrate.planned"),
            committed: reg.counter("migrate.committed"),
            aborted: reg.counter("migrate.aborted"),
            repaired: reg.counter("migrate.repaired"),
            requeued: reg.counter("migrate.requeued"),
            skipped: reg.counter("migrate.skipped"),
            copy_bytes: reg.counter("migrate.copy_bytes"),
            invalidations: reg.counter("migrate.invalidations"),
            prepare_ns: reg.histogram("migrate.prepare_ns"),
            copy_ns: reg.histogram("migrate.copy_ns"),
            commit_ns: reg.histogram("migrate.commit_ns"),
            tombstone_ns: reg.histogram("migrate.tombstone_ns"),
            total_ns: reg.histogram("migrate.total_ns"),
        }
    }
}

/// Plain-value mirror of the `migrate.*` counters, for reports and
/// assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrateReport {
    /// Moves the refinement pass queued on the backlog.
    pub planned: u64,
    /// Moves that ended with the new owner authoritative everywhere —
    /// including the [`MigrateReport::repaired`] subset, which got there
    /// via the forward-repair path.
    pub committed: u64,
    /// Moves that failed before their commit point: the old owner stayed
    /// authoritative and the move was dropped from the backlog.
    pub aborted: u64,
    /// Committed moves that needed [`StoreCluster::repair_migration`] to
    /// finish (the first drive failed after the commit point).
    pub repaired: u64,
    /// Ambiguous-repair deferrals: the repair RPC itself failed, so the
    /// move was parked for the next drain. Counts events, not moves — one
    /// move can requeue several times before the fault clears.
    pub requeued: u64,
    /// Backlog entries that were already satisfied (or moot) at drain
    /// time: the node sat on the destination already, or left the map.
    pub skipped: u64,
    /// Payload bytes shipped to destination replica chains during copy.
    pub copy_bytes: u64,
    /// Cache rows dropped by commit-first invalidation.
    pub invalidations: u64,
}

/// Queues the refinement pass's logical moves and drains a bounded number
/// of them per re-merge period through the store's crash-safe migration
/// protocol. Owned by the [`crate::IngestCoordinator`]; usable standalone
/// by benches and chaos tests.
#[derive(Debug)]
pub struct MigrationPlanner {
    backlog: VecDeque<(NodeId, u32, u32)>,
    /// Moves whose repair came back ambiguous (`Err`): retried before any
    /// backlog entry on every drain until they confirm either outcome.
    repairs: VecDeque<(NodeId, u32, u32)>,
    /// Physical moves per [`MigrationPlanner::drain`] call; 0 disables
    /// physical migration entirely (the pre-PR-10 logical-only behavior).
    moves_per_period: usize,
    metrics: MigrateMetricSet,
    report: MigrateReport,
}

impl MigrationPlanner {
    pub fn new(moves_per_period: usize) -> Self {
        MigrationPlanner {
            backlog: VecDeque::new(),
            repairs: VecDeque::new(),
            moves_per_period,
            metrics: MigrateMetricSet::default(),
            report: MigrateReport::default(),
        }
    }

    /// Mirror the `migrate.*` counters and histograms into `reg`.
    pub fn attach_metrics(&mut self, reg: &Registry) {
        self.metrics = MigrateMetricSet::attach(reg);
    }

    pub fn report(&self) -> MigrateReport {
        self.report
    }

    /// Moves queued but not yet drained.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Moves parked with an ambiguous repair, awaiting the next drain.
    /// Non-zero means some server's owner view may still be behind a
    /// half-broadcast commit — drain again once the fault clears.
    pub fn pending_repairs(&self) -> usize {
        self.repairs.len()
    }

    pub fn moves_per_period(&self) -> usize {
        self.moves_per_period
    }

    /// Queue the refinement pass's `(node, from, to)` moves.
    pub fn plan(&mut self, moves: &[(NodeId, u32, u32)]) {
        if self.moves_per_period == 0 {
            return; // physical migration disabled; don't grow a dead queue
        }
        self.backlog.extend(moves.iter().copied());
        self.report.planned += moves.len() as u64;
        self.metrics.planned.add(moves.len() as u64);
    }

    /// Drain up to `moves_per_period` backlog entries through the
    /// migration protocol against `cluster`, invalidating `cache` entries
    /// commit-first. Returns the number of moves committed this call.
    ///
    /// Never propagates a migration failure: pre-commit failures abort
    /// cleanly (old owner authoritative) and post-commit failures are
    /// repaired forward; either way the cluster is left consistent and the
    /// drain moves on to the next entry.
    pub fn drain(
        &mut self,
        cluster: &mut StoreCluster,
        mut cache: Option<&mut FeatureCacheEngine>,
    ) -> usize {
        let mut committed = 0usize;
        let mut budget = self.moves_per_period;

        // Ambiguous repairs go first: a move stuck after its commit point
        // may be holding server owner views apart, so converging it beats
        // starting new movement. Each retry spends budget like a move.
        let mut parked = std::mem::take(&mut self.repairs);
        while budget > 0 {
            let Some((node, source, to)) = parked.pop_front() else {
                break;
            };
            budget -= 1;
            match cluster.repair_migration(node, source, to) {
                Ok(true) => {
                    self.repair_committed();
                    committed += 1;
                    self.invalidate(node, &mut cache);
                }
                Ok(false) => {
                    self.report.aborted += 1;
                    self.metrics.aborted.incr();
                }
                Err(_) => self.requeue(node, source, to),
            }
        }
        self.repairs.extend(parked); // budget ran out before the queue did

        while budget > 0 {
            let Some((node, _from, to)) = self.backlog.pop_front() else {
                break;
            };
            budget -= 1;
            // Route by the authoritative owner at drain time, not the
            // queued `from` — chained moves and aborted predecessors can
            // both stale it between plan and drain.
            let source = match cluster.owner_of(node) {
                Ok(s) => s as u32,
                Err(_) => {
                    self.skip();
                    continue;
                }
            };
            if source == to {
                self.skip();
                continue;
            }
            let done = match cluster.migrate_node(node, to) {
                Ok(m) => {
                    self.commit(&m);
                    true
                }
                Err(_) => match cluster.repair_migration(node, source, to) {
                    Ok(true) => {
                        self.repair_committed();
                        true
                    }
                    // A confirmed abort: the old owner stayed
                    // authoritative, the move is dropped, and a later
                    // refinement pass re-plans it if it still pays.
                    Ok(false) => {
                        self.report.aborted += 1;
                        self.metrics.aborted.incr();
                        false
                    }
                    // Ambiguous: the repair RPC itself failed, so the
                    // commit may or may not have landed — and if it did,
                    // its broadcast may be partial. Park the move and
                    // retry the (idempotent) repair next drain.
                    Err(_) => {
                        self.requeue(node, source, to);
                        false
                    }
                },
            };
            if done {
                committed += 1;
                // Commit-first invalidation: only now is the entry
                // allowed to go (and a refill is guaranteed to read the
                // new owner's — identical — bytes).
                self.invalidate(node, &mut cache);
            }
        }
        committed
    }

    fn repair_committed(&mut self) {
        self.report.repaired += 1;
        self.metrics.repaired.incr();
        self.report.committed += 1;
        self.metrics.committed.incr();
    }

    fn requeue(&mut self, node: NodeId, source: u32, to: u32) {
        self.repairs.push_back((node, source, to));
        self.report.requeued += 1;
        self.metrics.requeued.incr();
    }

    fn invalidate(&mut self, node: NodeId, cache: &mut Option<&mut FeatureCacheEngine>) {
        if let Some(cache) = cache.as_deref_mut() {
            let dropped = cache.invalidate(&[node]);
            self.report.invalidations += dropped;
            self.metrics.invalidations.add(dropped);
        }
    }

    fn commit(&mut self, m: &Migration) {
        self.report.committed += 1;
        self.metrics.committed.incr();
        self.report.copy_bytes += m.copy_bytes;
        self.metrics.copy_bytes.add(m.copy_bytes);
        self.metrics.prepare_ns.record(m.phase_times[0]);
        self.metrics.copy_ns.record(m.phase_times[1]);
        self.metrics.commit_ns.record(m.phase_times[2]);
        self.metrics.tombstone_ns.record(m.phase_times[3]);
        self.metrics.total_ns.record(m.total_time());
    }

    fn skip(&mut self) {
        self.report.skipped += 1;
        self.metrics.skipped.incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_cache::{FeatureCacheEngine, PolicyKind};
    use bgl_graph::FeatureStore;
    use bgl_partition::{Partitioner, RoundRobinPartitioner};
    use bgl_sim::network::NetworkModel;
    use std::sync::Arc;

    const DIM: usize = 2;

    fn setup(k: usize) -> StoreCluster {
        let g = Arc::new(bgl_graph::generate::barabasi_albert(80, 3, 7));
        let mut f = FeatureStore::zeros(80, DIM);
        for v in 0..80u32 {
            f.row_mut(v).copy_from_slice(&[v as f32, v as f32 + 0.5]);
        }
        let p = RoundRobinPartitioner.partition(&g, &[], k);
        StoreCluster::new(g, Arc::new(f), &p, NetworkModel::paper_fabric(), 3)
    }

    #[test]
    fn drain_rate_limits_and_carries_the_backlog_forward() {
        let mut cluster = setup(3);
        let mut planner = MigrationPlanner::new(2);
        // Round-robin: v % 3 owns v. Five moves, two per period.
        let moves: Vec<(bgl_graph::NodeId, u32, u32)> =
            (0..5u32).map(|i| (i, i % 3, (i + 1) % 3)).collect();
        planner.plan(&moves);
        assert_eq!(planner.backlog_len(), 5);
        assert_eq!(planner.drain(&mut cluster, None), 2);
        assert_eq!(planner.backlog_len(), 3);
        assert_eq!(planner.drain(&mut cluster, None), 2);
        assert_eq!(planner.drain(&mut cluster, None), 1);
        assert_eq!(planner.backlog_len(), 0);
        let r = planner.report();
        assert_eq!((r.planned, r.committed, r.aborted, r.skipped), (5, 5, 0, 0));
        assert!(r.copy_bytes > 0);
        for (v, _, to) in moves {
            assert_eq!(cluster.owner_of(v).unwrap(), to as usize, "node {v}");
        }
    }

    #[test]
    fn committed_move_invalidates_cache_after_the_flip() {
        let mut cluster = setup(2);
        let v: bgl_graph::NodeId = 3; // owned by server 1
        let mut cache = FeatureCacheEngine::new(1, DIM, 16, 0, PolicyKind::Lru, &[]);
        let w = cluster.worker_location();
        let (rows, _) = cluster.fetch_features(&[v], w).unwrap();
        cache.fetch_batch(0, &[v], &mut |_| rows.to_vec());

        let reg = Registry::enabled();
        let mut planner = MigrationPlanner::new(4);
        planner.attach_metrics(&reg);
        planner.plan(&[(v, 1, 0)]);
        assert_eq!(planner.drain(&mut cluster, Some(&mut cache)), 1);
        let r = planner.report();
        assert_eq!(r.committed, 1);
        assert_eq!(r.invalidations, 1, "commit-first invalidation dropped the row");
        assert_eq!(cluster.owner_of(v).unwrap(), 0);
        // A refill reads the new owner's identical bytes.
        let (fresh, _) = cluster.fetch_features(&[v], w).unwrap();
        assert_eq!(fresh.to_vec(), vec![3.0, 3.5]);

        // Counters and histograms mirror the report.
        let counters: std::collections::BTreeMap<_, _> =
            reg.counters().into_iter().collect();
        assert_eq!(counters["migrate.planned"], 1);
        assert_eq!(counters["migrate.committed"], 1);
        assert_eq!(counters["migrate.invalidations"], 1);
        assert_eq!(counters["migrate.copy_bytes"], r.copy_bytes);
        let hists: std::collections::BTreeMap<_, _> =
            reg.histograms().into_iter().collect();
        for h in ["migrate.prepare_ns", "migrate.copy_ns", "migrate.commit_ns", "migrate.tombstone_ns", "migrate.total_ns"] {
            assert_eq!(hists[h].count, 1, "{h} must record one phase");
        }
    }

    #[test]
    fn aborted_move_is_dropped_with_old_owner_authoritative() {
        let mut cluster = setup(2);
        let v: bgl_graph::NodeId = 3; // owned by server 1, moving to 0
        let mut cache = FeatureCacheEngine::new(1, DIM, 16, 0, PolicyKind::Lru, &[]);
        let mut planner = MigrationPlanner::new(4);
        planner.plan(&[(v, 1, 0)]);
        cluster.set_server_down(0, true).unwrap();
        assert_eq!(planner.drain(&mut cluster, Some(&mut cache)), 0);
        cluster.set_server_down(0, false).unwrap();
        let r = planner.report();
        assert_eq!((r.committed, r.aborted), (0, 1));
        assert_eq!(r.invalidations, 0, "an aborted move must not touch the cache");
        assert_eq!(planner.backlog_len(), 0, "aborted moves are dropped, not retried");
        assert_eq!(cluster.owner_of(v).unwrap(), 1);
        let w = cluster.worker_location();
        let (rows, _) = cluster.fetch_features(&[v], w).unwrap();
        assert_eq!(rows.to_vec(), vec![3.0, 3.5]);
    }

    #[test]
    fn ambiguous_repair_is_parked_and_converges_on_the_next_drain() {
        // Server 1 is down as a *bystander*: the commit point lands on the
        // source (0 acks, routing flips) but the broadcast to 1 fails, and
        // so does the repair's own re-drive. Dropping the move here would
        // leave server 1's owner view behind forever — it must park.
        let mut cluster = setup(3);
        let v: bgl_graph::NodeId = 3; // owned by server 0, moving to 2
        let mut planner = MigrationPlanner::new(4);
        planner.plan(&[(v, 0, 2)]);
        cluster.set_server_down(1, true).unwrap();
        assert_eq!(planner.drain(&mut cluster, None), 0);
        let r = planner.report();
        assert_eq!((r.committed, r.aborted, r.requeued), (0, 0, 1));
        assert_eq!(planner.pending_repairs(), 1);
        assert_eq!(planner.backlog_len(), 0);
        assert_eq!(cluster.owner_of(v).unwrap(), 2, "commit point already flipped routing");

        cluster.set_server_down(1, false).unwrap();
        assert_eq!(planner.drain(&mut cluster, None), 1, "parked repair finishes first");
        let r = planner.report();
        assert_eq!((r.committed, r.repaired, r.aborted), (1, 1, 0));
        assert_eq!(planner.pending_repairs(), 0);
        for i in 0..3 {
            assert_eq!(
                cluster.in_process_server(i).unwrap().owner_view(v),
                Some(2),
                "server {i} converged"
            );
        }
    }

    #[test]
    fn stale_backlog_entries_are_skipped_not_remigrated() {
        let mut cluster = setup(3);
        let v: bgl_graph::NodeId = 1; // owned by server 1
        let mut planner = MigrationPlanner::new(4);
        // The same move queued twice (two refine passes flip-flopping):
        // the second drain finds the node already on its destination.
        planner.plan(&[(v, 1, 2), (v, 1, 2)]);
        assert_eq!(planner.drain(&mut cluster, None), 1);
        let r = planner.report();
        assert_eq!((r.committed, r.skipped), (1, 1));
        assert_eq!(cluster.owner_of(v).unwrap(), 2);
    }

    #[test]
    fn zero_budget_disables_physical_migration() {
        let mut cluster = setup(2);
        let mut planner = MigrationPlanner::new(0);
        planner.plan(&[(3, 1, 0)]);
        assert_eq!(planner.backlog_len(), 0, "disabled planner queues nothing");
        assert_eq!(planner.drain(&mut cluster, None), 0);
        assert_eq!(planner.report(), MigrateReport::default());
        assert_eq!(cluster.owner_of(3).unwrap(), 1);
    }
}
