//! Seeded, declarative churn schedules.
//!
//! The same idiom as `bgl_store::FaultPlan`: a small value object built
//! from a seed and a handful of knobs, expanded deterministically into a
//! concrete schedule. Two [`ChurnPlan`]s with equal fields produce
//! byte-identical op streams, so every churn experiment — and every crash
//! replay of one — is reproducible from the plan alone.
//!
//! Ops model the three mutations the store wire supports:
//!
//! * [`ChurnOp::AddNode`] — a node *arrives with its edges* (the streaming
//!   partitioning literature's arrival model, which is what gives the
//!   online LDG rule its neighbor hits) plus a feature row;
//! * [`ChurnOp::AddEdge`] — an edge between existing nodes, drawn with a
//!   locality bias so partition quality is something churn can actually
//!   degrade (uniform random edges would make every partition equally bad);
//! * [`ChurnOp::UpdateFeature`] — a full-row overwrite of an existing
//!   node, the op that exercises cache invalidation.

use bgl_graph::NodeId;
use rand::prelude::*;

/// One scheduled mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnOp {
    /// A new node arriving with `neighbors` (existing-node endpoints of
    /// its arrival edges) and feature row `row`.
    AddNode { neighbors: Vec<NodeId>, row: Vec<f32> },
    /// An edge between two existing nodes.
    AddEdge { u: NodeId, v: NodeId },
    /// Overwrite node `v`'s feature row.
    UpdateFeature { v: NodeId, row: Vec<f32> },
}

/// A seeded churn schedule: `ops` mutations mixed by integer weights.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnPlan {
    pub seed: u64,
    /// Total ops the schedule expands to.
    pub ops: usize,
    /// Relative weight of edge inserts.
    pub edge_weight: u32,
    /// Relative weight of node arrivals.
    pub node_weight: u32,
    /// Relative weight of feature updates.
    pub update_weight: u32,
    /// Arrival edges per new node (upper bound; at least 1 when possible).
    pub arrival_degree: usize,
    /// Half-width of the id window a biased edge endpoint is drawn from.
    /// Synthetic community graphs lay communities out contiguously, so a
    /// window keeps most churn edges intra-community.
    pub locality_window: u32,
}

impl ChurnPlan {
    /// An empty plan with the given determinism seed and the default mix
    /// (mostly edges, some arrivals, some updates).
    pub fn new(seed: u64) -> Self {
        ChurnPlan {
            seed,
            ops: 0,
            edge_weight: 6,
            node_weight: 2,
            update_weight: 2,
            arrival_degree: 3,
            locality_window: 32,
        }
    }

    /// Set the schedule length.
    pub fn ops(mut self, n: usize) -> Self {
        self.ops = n;
        self
    }

    /// Set the op mix by integer weights (edge : node : update).
    pub fn mix(mut self, edge: u32, node: u32, update: u32) -> Self {
        assert!(edge + node + update > 0, "at least one weight must be set");
        self.edge_weight = edge;
        self.node_weight = node;
        self.update_weight = update;
        self
    }

    /// Expand into the concrete op stream, given the node count and
    /// feature dim of the graph the churn will hit. New nodes created by
    /// the schedule are visible to later ops (edges can land on them,
    /// updates can rewrite them).
    pub fn schedule(&self, start_nodes: usize, dim: usize) -> Vec<ChurnOp> {
        assert!(start_nodes > 0, "churn needs a non-empty base graph");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total = (self.edge_weight + self.node_weight + self.update_weight) as u64;
        let mut n = start_nodes as u32;
        let mut out = Vec::with_capacity(self.ops);
        for _ in 0..self.ops {
            let roll = rng.random_range(0..total) as u32;
            if roll < self.edge_weight {
                let u = rng.random_range(0..n);
                out.push(ChurnOp::AddEdge { u, v: self.biased_endpoint(&mut rng, u, n) });
            } else if roll < self.edge_weight + self.node_weight {
                let anchor = rng.random_range(0..n);
                let deg = rng.random_range(1..=self.arrival_degree.max(1));
                let mut neighbors = Vec::with_capacity(deg);
                for _ in 0..deg {
                    neighbors.push(self.biased_endpoint(&mut rng, anchor, n));
                }
                neighbors.sort_unstable();
                neighbors.dedup();
                let row = (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
                out.push(ChurnOp::AddNode { neighbors, row });
                n += 1;
            } else {
                let v = rng.random_range(0..n);
                let row = (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
                out.push(ChurnOp::UpdateFeature { v, row });
            }
        }
        out
    }

    /// An endpoint near `anchor` (within the locality window) most of the
    /// time, uniform otherwise — churn that is local but not perfectly so.
    fn biased_endpoint(&self, rng: &mut StdRng, anchor: u32, n: u32) -> NodeId {
        if self.locality_window > 0 && rng.random_range(0..10u32) < 8 {
            let w = self.locality_window;
            let lo = anchor.saturating_sub(w);
            let hi = (anchor.saturating_add(w)).min(n - 1);
            rng.random_range(lo..=hi)
        } else {
            rng.random_range(0..n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_plan_same_schedule() {
        let a = ChurnPlan::new(7).ops(200).schedule(100, 4);
        let b = ChurnPlan::new(7).ops(200).schedule(100, 4);
        assert_eq!(a, b);
        let c = ChurnPlan::new(8).ops(200).schedule(100, 4);
        assert_ne!(a, c, "a different seed must reshuffle the stream");
    }

    #[test]
    fn mix_respects_weights_and_ids_stay_in_range() {
        let plan = ChurnPlan::new(3).ops(600).mix(1, 1, 1);
        let sched = plan.schedule(50, 2);
        assert_eq!(sched.len(), 600);
        let (mut e, mut a, mut u) = (0usize, 0usize, 0usize);
        let mut n = 50u32;
        for op in &sched {
            match op {
                ChurnOp::AddEdge { u: x, v: y } => {
                    e += 1;
                    assert!(*x < n && *y < n, "edge endpoints must exist");
                }
                ChurnOp::AddNode { neighbors, row } => {
                    a += 1;
                    assert!(!neighbors.is_empty() && row.len() == 2);
                    assert!(neighbors.iter().all(|&v| v < n));
                    n += 1;
                }
                ChurnOp::UpdateFeature { v, row } => {
                    u += 1;
                    assert!(*v < n && row.len() == 2);
                }
            }
        }
        // Equal weights: each kind gets a healthy share of 600.
        for (label, count) in [("edges", e), ("arrivals", a), ("updates", u)] {
            assert!(count > 120, "{label} under-represented: {count}");
        }
    }

    #[test]
    fn later_ops_can_touch_streamed_nodes() {
        // All-arrivals plan: every op grows the graph, and arrival edges
        // may reference nodes earlier arrivals created.
        let sched = ChurnPlan::new(11).ops(80).mix(0, 1, 0).schedule(10, 2);
        let touched_new = sched.iter().enumerate().any(|(i, op)| match op {
            ChurnOp::AddNode { neighbors, .. } => neighbors.iter().any(|&v| v >= 10),
            _ => panic!("mix(0,1,0) emitted a non-arrival at {i}"),
        });
        assert!(touched_new, "streamed nodes must join the id pool");
    }
}
