//! Online partition assignment for arriving nodes.
//!
//! The offline partitioners in `bgl-partition` see the whole graph; the
//! ingest path sees one node at a time, arriving with (some of) its edges.
//! [`OnlineAssigner`] applies the same LDG placement rule the streaming
//! partitioner uses offline — `(1 + hits) · (1 − size/cap)` via
//! [`bgl_partition::ldg_choose`] — against a capacity that grows with the
//! graph, so the logical partition map stays balanced as nodes stream in.
//!
//! Because each arrival is placed greedily with only local information, the
//! map drifts away from what a from-scratch repartition would produce.
//! [`OnlineAssigner::refine`] is the periodic counterweight: a local
//! re-merge pass over the nodes whose neighborhoods changed, moving a node
//! to the partition holding the plurality of its neighbors when that
//! strictly improves locality and respects capacity. `bgl-ingest` tracks
//! both maps' edge-cut/balance so the drift is measured, not assumed.

use bgl_graph::{Csr, NodeId};
use bgl_partition::{ldg_choose, Partition};

/// Streaming partition state: the logical assignment map plus the running
/// per-partition sizes the LDG rule scores against.
#[derive(Clone, Debug)]
pub struct OnlineAssigner {
    assignment: Vec<u32>,
    sizes: Vec<usize>,
    /// Capacity slack multiplier: per-partition capacity is
    /// `slack · n / k`, recomputed as `n` grows.
    slack: f64,
    /// Scratch hit counters, allocated once for the whole stream (the same
    /// hoisting the offline LDG loop does).
    hits: Vec<usize>,
}

impl OnlineAssigner {
    /// Seed the assigner from an offline partition of the base graph.
    pub fn new(partition: &Partition, slack: f64) -> Self {
        let k = partition.k;
        let assignment = partition.assignment.clone();
        let mut sizes = vec![0usize; k];
        for &a in &assignment {
            sizes[a as usize] += 1;
        }
        OnlineAssigner { assignment, sizes, slack: slack.max(1.0), hits: vec![0; k] }
    }

    pub fn k(&self) -> usize {
        self.sizes.len()
    }

    /// Nodes currently assigned (base + streamed arrivals).
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Partition of node `v`, if assigned.
    pub fn part_of(&self, v: NodeId) -> Option<u32> {
        self.assignment.get(v as usize).copied()
    }

    /// Per-partition capacity at the current graph size.
    fn cap(&self) -> f64 {
        (self.slack * self.assignment.len() as f64 / self.k() as f64).max(1.0)
    }

    /// Score one arriving node given the already-assigned endpoints of its
    /// arrival edges, without recording anything. The caller commits the
    /// placement with [`OnlineAssigner::admit`] once the store acked the
    /// node — keeping the logical map from drifting ahead of a failed
    /// broadcast. Unassigned (future) neighbors contribute no hits.
    pub fn choose(&mut self, neighbors: &[NodeId]) -> u32 {
        self.hits.fill(0);
        for &u in neighbors {
            if let Some(&p) = self.assignment.get(u as usize) {
                self.hits[p as usize] += 1;
            }
        }
        let cap = self.cap();
        ldg_choose(&self.hits, &self.sizes, cap) as u32
    }

    /// Commit the next node (dense id `num_nodes()`) to `owner`.
    pub fn admit(&mut self, owner: u32) {
        assert!((owner as usize) < self.k(), "owner {} out of range", owner);
        self.assignment.push(owner);
        self.sizes[owner as usize] += 1;
    }

    /// [`OnlineAssigner::choose`] + [`OnlineAssigner::admit`] in one step,
    /// for callers with no failure window between the two.
    pub fn place(&mut self, neighbors: &[NodeId]) -> u32 {
        let owner = self.choose(neighbors);
        self.admit(owner);
        owner
    }

    /// The local re-merge pass: for each node in `dirty` (ascending or
    /// not), move it to the partition holding the plurality of its merged
    /// neighbors when that strictly beats its current partition's hit
    /// count and the target has capacity. Returns the number of moves.
    ///
    /// One pass is deliberately local — no global rebalance, no cascading
    /// — so its cost is proportional to the churn since the last merge,
    /// not to the graph.
    pub fn refine(&mut self, g: &Csr, dirty: &[NodeId]) -> usize {
        self.refine_moves(g, dirty).len()
    }

    /// [`OnlineAssigner::refine`], but returning the concrete move list —
    /// `(node, from, to)` per reassignment, in pass order — so the caller
    /// can feed a [`crate::migrate::MigrationPlanner`] and make the
    /// *physical* placement follow the logical map instead of drifting
    /// from it.
    pub fn refine_moves(&mut self, g: &Csr, dirty: &[NodeId]) -> Vec<(NodeId, u32, u32)> {
        let cap = self.cap();
        let mut moves = Vec::new();
        for &v in dirty {
            let Some(&cur) = self.assignment.get(v as usize) else {
                continue;
            };
            self.hits.fill(0);
            for &u in g.neighbors(v) {
                if let Some(&p) = self.assignment.get(u as usize) {
                    self.hits[p as usize] += 1;
                }
            }
            let best = ldg_choose(&self.hits, &self.sizes, cap);
            if best as u32 != cur
                && self.hits[best] > self.hits[cur as usize]
                && (self.sizes[best] as f64) + 1.0 <= cap
            {
                self.sizes[cur as usize] -= 1;
                self.sizes[best] += 1;
                self.assignment[v as usize] = best as u32;
                moves.push((v, cur, best as u32));
            }
        }
        moves
    }

    /// Snapshot the logical map as a [`Partition`] for quality metrics.
    pub fn partition(&self) -> Partition {
        Partition::new(self.k(), self.assignment.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_partition::{Partitioner, RoundRobinPartitioner};

    fn seeded(n: usize, k: usize) -> OnlineAssigner {
        let g = bgl_graph::generate::barabasi_albert(n, 3, 7);
        let p = RoundRobinPartitioner.partition(&g, &[], k);
        OnlineAssigner::new(&p, 1.1)
    }

    #[test]
    fn arrivals_follow_their_neighbors() {
        let mut a = seeded(40, 4);
        // A node arriving with all neighbors on partition 2 lands there.
        let on_two: Vec<NodeId> =
            (0..40u32).filter(|&v| a.part_of(v) == Some(2)).take(3).collect();
        let chosen = a.place(&on_two);
        assert_eq!(chosen, 2);
        assert_eq!(a.part_of(40), Some(2));
        assert_eq!(a.num_nodes(), 41);
    }

    #[test]
    fn capacity_spreads_a_hot_stream() {
        let mut a = seeded(40, 4);
        // 40 isolated arrivals: no hits, so placement is pure balancing.
        for _ in 0..40 {
            a.place(&[]);
        }
        let (max, min) = (
            *a.sizes().iter().max().unwrap(),
            *a.sizes().iter().min().unwrap(),
        );
        assert!(max - min <= 2, "balanced growth: {:?}", a.sizes());
    }

    #[test]
    fn refine_moves_misplaced_nodes_toward_neighbors() {
        // Path graph partitioned round-robin: every node's neighbors are
        // elsewhere. Refinement must claw back some locality.
        let mut b = bgl_graph::GraphBuilder::new(60);
        for v in 0..59u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let p = RoundRobinPartitioner.partition(&g, &[], 3);
        let before = bgl_partition::metrics::edge_cut_fraction(&g, &p);
        let mut a = OnlineAssigner::new(&p, 1.2);
        let dirty: Vec<NodeId> = (0..60).collect();
        let moves = a.refine_moves(&g, &dirty);
        assert!(!moves.is_empty());
        for &(v, from, to) in &moves {
            assert_ne!(from, to, "a move must change the partition");
            assert_eq!(a.part_of(v), Some(to), "move list mirrors the map");
        }
        let after = bgl_partition::metrics::edge_cut_fraction(&g, &a.partition());
        assert!(after < before, "refine must cut fewer edges: {after} vs {before}");
        let total: usize = a.sizes().iter().sum();
        assert_eq!(total, 60, "moves conserve nodes");
    }
}
