//! Incremental repair of a proximity-aware training order.
//!
//! A full [`bgl_sampler::ProximityAware`] epoch order costs several BFS
//! traversals of the whole graph. After churn, only the train nodes whose
//! neighborhoods changed have a stale position — everything else keeps the
//! locality the full ordering gave it. [`incremental_po_reorder`] repairs
//! just those: each dirty train node is pulled out of the order and
//! re-inserted next to one of its (merged-view) neighbors, so it is again
//! adjacent in time to a node it is adjacent to in the graph. Appended
//! train nodes are inserted the same way. The result stays a permutation
//! of the (possibly grown) train set, and the repair cost is proportional
//! to the churn, not the graph.

use bgl_graph::{Csr, NodeId};
use std::collections::HashSet;

/// Repair `order` in place after the graph changed. `dirty` is the set of
/// nodes whose neighborhoods changed (from `DynamicGraph::dirty_nodes`);
/// only its intersection with the train set matters. `added_train` lists
/// train nodes that did not exist when the order was built; they are
/// inserted as if dirty. Returns how many nodes were re-placed.
pub fn incremental_po_reorder(
    g: &Csr,
    order: &mut Vec<NodeId>,
    dirty: &[NodeId],
    added_train: &[NodeId],
) -> usize {
    let in_order: HashSet<NodeId> = order.iter().copied().collect();
    let mut stale: Vec<NodeId> = dirty
        .iter()
        .copied()
        .filter(|v| in_order.contains(v))
        .collect();
    stale.extend(added_train.iter().copied().filter(|v| !in_order.contains(v)));
    if stale.is_empty() {
        return 0;
    }
    let stale_set: HashSet<NodeId> = stale.iter().copied().collect();
    order.retain(|v| !stale_set.contains(v));

    // Re-insert each stale node right after its first neighbor still in
    // the order. Position lookups run against a map rebuilt lazily only
    // when an insertion shifts it, amortized by inserting back-to-front
    // per lookup round; at churn-harness scale a linear scan per node is
    // the simple, predictable choice.
    let mut moved = 0usize;
    for &v in &stale {
        let slot = g
            .neighbors(v)
            .iter()
            .find_map(|&u| order.iter().position(|&w| w == u).map(|i| i + 1));
        match slot {
            Some(i) => order.insert(i, v),
            None => order.push(v),
        }
        moved += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_graph::GraphBuilder;

    fn path(n: u32) -> Csr {
        let mut b = GraphBuilder::new(n as usize);
        for v in 0..n - 1 {
            b.add_edge(v, v + 1);
        }
        b.build()
    }

    #[test]
    fn dirty_nodes_land_next_to_a_neighbor() {
        let g = path(10);
        // An order that strands node 4 far from its neighbors.
        let mut order: Vec<NodeId> = vec![4, 8, 9, 0, 1, 2, 3, 5, 6, 7];
        let moved = incremental_po_reorder(&g, &mut order, &[4], &[]);
        assert_eq!(moved, 1);
        let pos = |v: NodeId| order.iter().position(|&w| w == v).unwrap();
        let p4 = pos(4);
        assert!(
            p4 == pos(3) + 1 || p4 == pos(5) + 1,
            "4 must sit right after a neighbor: {:?}",
            order
        );
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>(), "still a permutation");
    }

    #[test]
    fn added_train_nodes_join_near_neighbors_and_isolated_ones_append() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(4, 2);
        let g = b.build();
        let mut order: Vec<NodeId> = vec![0, 1, 2, 3];
        // 4 is adjacent to 2; 5 is isolated.
        let moved = incremental_po_reorder(&g, &mut order, &[], &[4, 5]);
        assert_eq!(moved, 2);
        assert_eq!(order.len(), 6);
        let pos = |v: NodeId| order.iter().position(|&w| w == v).unwrap();
        assert_eq!(pos(4), pos(2) + 1);
        assert_eq!(*order.last().unwrap(), 5, "no neighbor in order → tail");
    }

    #[test]
    fn untouched_order_is_untouched() {
        let g = path(6);
        let mut order: Vec<NodeId> = vec![5, 4, 3];
        let before = order.clone();
        // Dirty nodes outside the train set are ignored.
        assert_eq!(incremental_po_reorder(&g, &mut order, &[0, 1], &[]), 0);
        assert_eq!(order, before);
    }
}
