//! Property-based tests for the graph substrate.

use bgl_graph::generate::{self, RmatConfig};
use bgl_graph::traversal::{bfs_full_order, connected_components, multi_source_bfs};
use bgl_graph::{GraphBuilder, InducedSubgraph, NodeId};
use proptest::prelude::*;

/// Arbitrary small graph as (node count, arc list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let arcs = proptest::collection::vec(
            (0..n as NodeId, 0..n as NodeId),
            0..200,
        );
        (Just(n), arcs)
    })
}

proptest! {
    #[test]
    fn builder_output_is_sorted_unique_in_range((n, arcs) in arb_graph()) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(&arcs);
        let g = b.build();
        prop_assert_eq!(g.num_nodes(), n);
        for v in 0..n as NodeId {
            let nbrs = g.neighbors(v);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1], "neighbors not sorted/unique");
            }
            for &t in nbrs {
                prop_assert!((t as usize) < n);
                prop_assert_ne!(t, v, "self-loop survived");
            }
        }
    }

    #[test]
    fn builder_preserves_every_non_loop_arc((n, arcs) in arb_graph()) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(&arcs);
        let g = b.build();
        for &(u, v) in &arcs {
            if u != v {
                prop_assert!(g.has_edge(u, v), "lost arc {}->{}", u, v);
            }
        }
    }

    #[test]
    fn reversed_twice_is_identity((n, arcs) in arb_graph()) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(&arcs);
        let g = b.build();
        let rr = g.reversed().reversed();
        prop_assert_eq!(g.offsets(), rr.offsets());
        prop_assert_eq!(g.targets(), rr.targets());
    }

    #[test]
    fn bfs_full_order_is_a_permutation((n, arcs) in arb_graph()) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(&arcs);
        let g = b.build();
        let order = bfs_full_order(&g, 0);
        prop_assert_eq!(order.len(), n);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n, "order has duplicates");
    }

    #[test]
    fn multi_source_bfs_partitions_reached_nodes(
        (n, arcs) in arb_graph(),
        k in 1usize..5,
    ) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(&arcs);
        let g = b.build();
        let sources: Vec<NodeId> =
            (0..k.min(n)).map(|i| (i * n / k.min(n)) as NodeId).collect();
        let res = multi_source_bfs(&g, &sources, usize::MAX);
        // Every reached node carries a valid source index and sizes add up.
        let reached = res.assignment.iter().filter(|&&a| a != u32::MAX).count();
        prop_assert_eq!(res.block_sizes.iter().sum::<usize>(), reached);
        for &a in &res.assignment {
            prop_assert!(a == u32::MAX || (a as usize) < sources.len());
        }
        // Sources that appear first claim themselves.
        prop_assert!(res.assignment[sources[0] as usize] != u32::MAX);
    }

    #[test]
    fn components_agree_with_reachability((n, arcs) in arb_graph()) {
        // Components are computed on the *symmetrized* graph so that
        // component ID equality matches undirected reachability.
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &arcs {
            b.add_undirected(u, v);
        }
        let g = b.build();
        let (comp, count) = connected_components(&g);
        prop_assert!(count >= 1 && count <= n);
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
    }

    #[test]
    fn induced_subgraph_edges_exist_in_parent((n, arcs) in arb_graph()) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(&arcs);
        let g = b.build();
        let nodes: Vec<NodeId> = (0..n as NodeId).step_by(2).collect();
        let sub = InducedSubgraph::induce(&g, &nodes);
        for (lu, lv) in sub.graph.edges() {
            let gu = sub.global_ids[lu as usize];
            let gv = sub.global_ids[lv as usize];
            prop_assert!(g.has_edge(gu, gv));
        }
    }

    #[test]
    fn rmat_edge_count_bounded(scale in 4u32..9, ef in 1usize..8) {
        let g = generate::rmat(
            RmatConfig { scale, edge_factor: ef, ..Default::default() },
            scale as u64 * 31 + ef as u64,
        );
        let n = 1usize << scale;
        prop_assert_eq!(g.num_nodes(), n);
        // Undirected insertion: at most 2 arcs per drawn edge.
        prop_assert!(g.num_edges() <= 2 * ef * n);
    }

    /// f16 round-trip: widening a narrowed value must be a fixed point
    /// (idempotent quantization) with bounded error, for arbitrary bit
    /// patterns — covering subnormals, ±inf and NaN payloads.
    #[test]
    fn f16_quantization_is_idempotent_and_bounded(bits in any::<u32>()) {
        use bgl_graph::half::quantize_f16;
        let x = f32::from_bits(bits);
        let q = quantize_f16(x);
        // Idempotence: a value already representable in f16 is unchanged.
        prop_assert_eq!(
            quantize_f16(q).to_bits(),
            q.to_bits(),
            "re-quantizing {} moved the bits",
            q
        );
        if x.is_nan() {
            prop_assert!(q.is_nan(), "NaN payload collapsed to {}", q);
        } else if x.is_infinite() {
            prop_assert_eq!(q, x);
        } else if x.abs() >= 65520.0 {
            // Beyond the f16 rounding boundary: overflow to same-sign inf.
            prop_assert!(q.is_infinite() && q.is_sign_positive() == x.is_sign_positive());
        } else if x.abs() >= 6.104e-5 {
            // Normal f16 range: relative error ≤ 2^-11.
            prop_assert!(((q - x) / x).abs() <= 4.9e-4, "x={} q={}", x, q);
        } else {
            // Subnormal range: absolute error ≤ half the subnormal step.
            prop_assert!((q - x).abs() <= 2.0f32.powi(-25), "x={} q={}", x, q);
        }
        // Sign is always preserved (including on zeros and NaNs).
        prop_assert_eq!(q.is_sign_positive(), x.is_sign_positive());
    }

    /// Row encode/decode agrees with scalar quantization elementwise.
    #[test]
    fn f16_row_codec_matches_scalar_quantization(
        row in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        use bgl_graph::half::{decode_row_f16, encode_row_f16, quantize_f16};
        let row: Vec<f32> = row.into_iter().map(f32::from_bits).collect();
        let mut bits = Vec::new();
        encode_row_f16(&row, &mut bits);
        prop_assert_eq!(bits.len(), row.len());
        let mut back = Vec::new();
        decode_row_f16(&bits, &mut back);
        for (&x, &b) in row.iter().zip(&back) {
            prop_assert_eq!(b.to_bits(), quantize_f16(x).to_bits());
        }
    }

    /// FeatureBlock: arbitrary placements read back the exact placed row,
    /// unplaced positions read zeros.
    #[test]
    fn feature_block_placement_round_trips(
        dim in 1usize..6,
        rows in 1usize..12,
        seed in any::<u64>(),
    ) {
        use bgl_graph::FeatureBlock;
        let mut b = FeatureBlock::new(dim, rows);
        // Deterministic pseudo-random placement of a single segment.
        let seg_rows = (seed as usize % rows).max(1);
        let buf: Vec<f32> = (0..seg_rows * dim).map(|i| i as f32 + 0.5).collect();
        let seg = b.adopt_segment(buf.clone());
        let mut placed = vec![None; rows];
        for r in 0..seg_rows {
            let pos = (seed as usize + r * 7) % rows;
            b.place(pos, seg, r);
            placed[pos] = Some(r);
        }
        for (pos, p) in placed.iter().enumerate() {
            match p {
                Some(r) => prop_assert_eq!(b.row(pos), &buf[r * dim..(r + 1) * dim]),
                None => prop_assert!(b.row(pos).iter().all(|&x| x == 0.0)),
            }
        }
    }

    #[test]
    fn gather_matches_rows(dim in 1usize..8, n in 1usize..20) {
        let mut f = bgl_graph::FeatureStore::zeros(n, dim);
        for v in 0..n as NodeId {
            for (j, x) in f.row_mut(v).iter_mut().enumerate() {
                *x = (v as usize * dim + j) as f32;
            }
        }
        let ids: Vec<NodeId> = (0..n as NodeId).rev().collect();
        let gathered = f.gather(&ids);
        for (i, &v) in ids.iter().enumerate() {
            prop_assert_eq!(&gathered[i * dim..(i + 1) * dim], f.row(v));
        }
    }
}

#[test]
fn degree_gini_bounds() {
    let g = generate::barabasi_albert(500, 3, 5);
    let gini = generate::degree_gini(&g);
    assert!((0.0..=1.0).contains(&gini), "gini {} out of bounds", gini);
}
