//! IEEE 754 binary16 ("half") conversion and the feature-precision knob.
//!
//! BGL ships node features over the network and pins them in caches; at
//! `dim = 100..=300` floats per node the feature bytes dominate both D_I/D_II
//! wire traffic and cache capacity. Storing rows as f16 halves those bytes
//! while perturbing each scalar by at most one half-ULP (§ Table 5 pins the
//! resulting accuracy delta). Compute stays f32 end-to-end: rows are widened
//! on decode, so the GNN kernels never see half precision.
//!
//! The conversions are hand-written (no external crate): round-to-nearest-
//! even on narrowing, exact on widening, with subnormals, ±inf and NaN
//! payloads handled explicitly. Both directions are pure bit manipulation —
//! no float arithmetic — so they are bit-exact across platforms.

/// How feature rows are stored at rest (wire frames, cache slots, disk
/// pages). In-memory minibatches are always f32.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FeaturePrecision {
    /// Full f32 scalars — 4 bytes each. The default; bit-exact.
    #[default]
    F32,
    /// IEEE 754 binary16 scalars — 2 bytes each. Halves feature bytes at
    /// ≤ half-ULP error per scalar.
    F16,
}

impl FeaturePrecision {
    /// Bytes one stored scalar occupies.
    #[inline]
    pub fn bytes_per_scalar(self) -> usize {
        match self {
            FeaturePrecision::F32 => 4,
            FeaturePrecision::F16 => 2,
        }
    }

    /// Stable on-wire/on-disk discriminant.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            FeaturePrecision::F32 => 0,
            FeaturePrecision::F16 => 1,
        }
    }

    /// Inverse of [`FeaturePrecision::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(FeaturePrecision::F32),
            1 => Some(FeaturePrecision::F16),
            _ => None,
        }
    }
}

/// Narrow an `f32` to binary16 bits, rounding to nearest-even.
///
/// Overflow (|x| ≥ 65520) goes to ±inf; tiny values round through the f16
/// subnormal range down to ±0. NaNs stay NaN: the quiet bit is forced and
/// the top payload bits are kept, so a payloaded NaN survives (possibly
/// truncated) rather than collapsing to infinity.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            // Keep the high 10 payload bits; force the quiet bit so the
            // result cannot degenerate to an infinity encoding.
            sign | 0x7C00 | 0x0200 | ((mant >> 13) as u16 & 0x03FF)
        };
    }

    // Unbiased exponent; f16 bias is 15, f32 bias is 127.
    let e = exp - 127;
    if e >= 16 {
        // Too large for f16 (max finite is 65504): overflow to inf.
        return sign | 0x7C00;
    }
    if e >= -14 {
        // Normal f16 range. 13 mantissa bits are dropped; round-to-nearest,
        // ties to even on the retained LSB.
        let m = mant >> 13;
        let rest = mant & 0x1FFF;
        let halfway = 0x1000;
        let mut h = sign as u32 | (((e + 15) as u32) << 10) | m;
        if rest > halfway || (rest == halfway && (m & 1) == 1) {
            // Mantissa carry ripples into the exponent naturally
            // (1.11..1 * 2^e rounds up to 1.0 * 2^{e+1}).
            h += 1;
        }
        return h as u16;
    }
    if e >= -25 {
        // Subnormal f16: shift the implicit leading 1 into the mantissa.
        let full = mant | 0x80_0000;
        let shift = (-14 - e) as u32 + 13;
        let m = full >> shift;
        let rest = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut h = sign as u32 | m;
        if rest > halfway || (rest == halfway && (m & 1) == 1) {
            h += 1;
        }
        return h as u16;
    }
    // Underflow to signed zero.
    sign
}

/// Widen binary16 bits to `f32` exactly (every f16 value is representable).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;

    let bits = if exp == 0x1F {
        // Inf / NaN: shift the payload back up.
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign // ±0
        } else {
            // Subnormal: value is mant·2⁻²⁴. Renormalize — the leading bit's
            // position becomes the exponent (unbiased `lead - 24`, so biased
            // `lead + 103`) and the rest shifts up into the f32 mantissa.
            let lead = 31 - mant.leading_zeros(); // 0..=9
            let m = (mant << (23 - lead)) & 0x7F_FFFF;
            sign | ((lead + 103) << 23) | m
        }
    } else {
        // Normal: rebias 15 -> 127.
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Encode a row of f32 scalars into f16 bits.
pub fn encode_row_f16(row: &[f32], out: &mut Vec<u16>) {
    out.reserve(row.len());
    for &x in row {
        out.push(f32_to_f16_bits(x));
    }
}

/// Decode f16 bits into f32 scalars, appending to `out`.
pub fn decode_row_f16(bits: &[u16], out: &mut Vec<f32>) {
    out.reserve(bits.len());
    for &h in bits {
        out.push(f16_bits_to_f32(h));
    }
}

/// Round-trip one scalar through f16 (the quantization a stored row
/// undergoes). Used by tests and the tab5 accuracy harness.
#[inline]
pub fn quantize_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_round_trip() {
        for &v in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, 1.5, 0.25, -3.75] {
            let q = quantize_f16(v);
            assert_eq!(q.to_bits(), v.to_bits(), "{v} should be exact in f16");
        }
    }

    #[test]
    fn signed_zero_is_preserved() {
        assert_eq!(quantize_f16(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(quantize_f16(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn infinities_and_overflow() {
        assert_eq!(quantize_f16(f32::INFINITY), f32::INFINITY);
        assert_eq!(quantize_f16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        // Max finite f16 is 65504; the rounding boundary is 65520.
        assert_eq!(quantize_f16(65504.0), 65504.0);
        assert_eq!(quantize_f16(65519.0), 65504.0);
        assert_eq!(quantize_f16(65520.0), f32::INFINITY);
        assert_eq!(quantize_f16(-1e38), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_payloads_stay_nan() {
        let q = quantize_f16(f32::NAN);
        assert!(q.is_nan());
        // A payloaded signalling-ish NaN must not collapse to inf.
        let payload = f32::from_bits(0x7F80_0001);
        assert!(quantize_f16(payload).is_nan());
        let neg = f32::from_bits(0xFFC0_1234);
        let qn = quantize_f16(neg);
        assert!(qn.is_nan());
        assert!(qn.to_bits() & 0x8000_0000 != 0, "NaN sign preserved");
    }

    #[test]
    fn subnormal_range() {
        // Smallest positive f16 subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(quantize_f16(tiny), tiny);
        // Largest f16 subnormal: 1023 * 2^-24 (just under 2^-14).
        let sub = 1023.0 * 2.0f32.powi(-24);
        assert_eq!(quantize_f16(sub), sub);
        // Smallest normal.
        let norm = 2.0f32.powi(-14);
        assert_eq!(quantize_f16(norm), norm);
        // Below half the smallest subnormal: flush to zero, keeping sign.
        assert_eq!(quantize_f16(2.0f32.powi(-26)).to_bits(), 0);
        assert_eq!(quantize_f16(-(2.0f32.powi(-26))).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn rounding_ties_go_to_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next f16 (1 + 2^-10):
        // the tie must go to the even mantissa, i.e. 1.0.
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(quantize_f16(tie), 1.0);
        // 1 + 3·2^-11 ties between (1 + 2^-10) and (1 + 2^-9); even is the
        // latter (mantissa 0b10).
        let tie2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(quantize_f16(tie2), 1.0 + 2.0f32.powi(-9));
        // Just above a halfway point rounds up.
        let up = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-18);
        assert_eq!(quantize_f16(up), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn mantissa_carry_ripples_into_exponent() {
        // Largest f16 mantissa at e=0 rounds up into e=1: 1.9999.. -> 2.0.
        let v = 1.0 + 1023.5 / 1024.0; // halfway above 1 + 1023/1024
        assert_eq!(quantize_f16(v), 2.0);
    }

    #[test]
    fn quantization_error_is_bounded_by_half_ulp() {
        // For normal-range values the relative error is ≤ 2^-11.
        let mut x = 1.0e-4f32;
        while x < 6.0e4 {
            let q = quantize_f16(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= 4.9e-4, "x={x} q={q} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn row_encode_decode_round_trip() {
        let row: Vec<f32> = (0..257).map(|i| (i as f32 - 128.0) * 0.37).collect();
        let mut bits = Vec::new();
        encode_row_f16(&row, &mut bits);
        assert_eq!(bits.len(), row.len());
        let mut back = Vec::new();
        decode_row_f16(&bits, &mut back);
        for (a, b) in row.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() * 5e-4 + 1e-6);
        }
        // Decoding is idempotent: re-quantizing a quantized value is exact.
        for &b in &back {
            assert_eq!(quantize_f16(b).to_bits(), b.to_bits());
        }
    }
}
