//! Edge-list accumulator that freezes into a [`Csr`].

use crate::{Csr, NodeId};

/// Mutable edge-list builder.
///
/// Collect arcs with [`GraphBuilder::add_edge`] (or undirected edges with
/// [`GraphBuilder::add_undirected`]), then call [`GraphBuilder::build`] to
/// obtain a deduplicated, sorted [`Csr`]. Self-loops are dropped by default
/// because none of the samplers or GNN models in the paper use them;
/// call [`GraphBuilder::keep_self_loops`] to retain them.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    arcs: Vec<(NodeId, NodeId)>,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `num_nodes` nodes and no edges yet.
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= NodeId::MAX as usize,
            "node count {} exceeds NodeId range",
            num_nodes
        );
        GraphBuilder {
            num_nodes,
            arcs: Vec::new(),
            keep_self_loops: false,
        }
    }

    /// Pre-allocate space for `n` arcs.
    pub fn with_capacity(num_nodes: usize, n: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.arcs.reserve(n);
        b
    }

    /// Retain self-loops instead of silently dropping them at build time.
    pub fn keep_self_loops(mut self) -> Self {
        self.keep_self_loops = true;
        self
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of arcs accumulated so far (before dedup).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Add the directed arc `u -> v`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.num_nodes, "src {} out of range", u);
        debug_assert!((v as usize) < self.num_nodes, "dst {} out of range", v);
        self.arcs.push((u, v));
    }

    /// Add both `u -> v` and `v -> u`.
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Bulk-add arcs from a slice.
    pub fn extend_edges(&mut self, arcs: &[(NodeId, NodeId)]) {
        for &(u, v) in arcs {
            self.add_edge(u, v);
        }
    }

    /// Freeze into a [`Csr`]: counting sort by source, per-node sort of
    /// targets, dedup, optional self-loop removal. O(V + E log d_max).
    pub fn build(mut self) -> Csr {
        if !self.keep_self_loops {
            self.arcs.retain(|&(u, v)| u != v);
        }
        let n = self.num_nodes;
        let mut counts = vec![0u64; n + 1];
        for &(u, _) in &self.arcs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut targets = vec![0 as NodeId; self.arcs.len()];
        let mut cursor = counts.clone();
        for &(u, v) in &self.arcs {
            let slot = cursor[u as usize] as usize;
            targets[slot] = v;
            cursor[u as usize] += 1;
        }
        // Sort and dedup each node's slice, compacting in place.
        let mut offsets = vec![0u64; n + 1];
        let mut write = 0usize;
        for v in 0..n {
            let (lo, hi) = (counts[v] as usize, counts[v + 1] as usize);
            let slice = &mut targets[lo..hi];
            slice.sort_unstable();
            let mut prev: Option<NodeId> = None;
            let mut kept = 0usize;
            for i in 0..slice.len() {
                if prev != Some(slice[i]) {
                    prev = Some(slice[i]);
                    slice[kept] = slice[i];
                    kept += 1;
                }
            }
            // Move the kept prefix down to the compacted write position.
            for i in 0..kept {
                targets[write + i] = targets[lo + i];
            }
            write += kept;
            offsets[v + 1] = write as u64;
        }
        targets.truncate(write);
        Csr::from_parts(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_deduped() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        b.add_edge(0, 2); // duplicate
        b.add_edge(3, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let mut b = GraphBuilder::new(2).keep_self_loops();
        b.add_edge(0, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[0]);
    }

    #[test]
    fn undirected_adds_both_arcs() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(0, 2);
        let g = b.build();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 0);
    }
}
