//! Induced subgraphs and k-hop neighborhoods.
//!
//! Sampled mini-batches are subgraphs; partition quality is measured by how
//! much of a training node's k-hop neighborhood stays inside one partition.

use crate::{Csr, GraphBuilder, NodeId};
use std::collections::VecDeque;

/// A subgraph induced on a node subset, with the local->global ID mapping
/// preserved — the same representation samplers ship to workers.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// Local adjacency (IDs are indices into `global_ids`).
    pub graph: Csr,
    /// `global_ids[local]` is the original node ID.
    pub global_ids: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Induce the subgraph of `g` on `nodes` (order preserved, must be
    /// duplicate-free).
    pub fn induce(g: &Csr, nodes: &[NodeId]) -> Self {
        let mut local_of = std::collections::HashMap::with_capacity(nodes.len());
        for (i, &v) in nodes.iter().enumerate() {
            let prev = local_of.insert(v, i as NodeId);
            assert!(prev.is_none(), "duplicate node {} in induced set", v);
        }
        let mut b = GraphBuilder::new(nodes.len());
        for (lu, &u) in nodes.iter().enumerate() {
            for &v in g.neighbors(u) {
                if let Some(&lv) = local_of.get(&v) {
                    b.add_edge(lu as NodeId, lv);
                }
            }
        }
        InducedSubgraph { graph: b.build(), global_ids: nodes.to_vec() }
    }

    /// Number of nodes in the subgraph.
    pub fn num_nodes(&self) -> usize {
        self.global_ids.len()
    }
}

/// All nodes within `k` hops of `root` (including `root`), in BFS order.
pub fn khop_neighborhood(g: &Csr, root: NodeId, k: usize) -> Vec<NodeId> {
    let mut dist = std::collections::HashMap::new();
    let mut order = vec![root];
    let mut queue = VecDeque::new();
    dist.insert(root, 0usize);
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        if du == k {
            continue;
        }
        for &v in g.neighbors(u) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                order.push(v);
                queue.push_back(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_undirected(i as NodeId, (i + 1) as NodeId);
        }
        b.build()
    }

    #[test]
    fn khop_on_path() {
        let g = path(7);
        let mut hood = khop_neighborhood(&g, 3, 2);
        hood.sort_unstable();
        assert_eq!(hood, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn khop_zero_is_self() {
        let g = path(4);
        assert_eq!(khop_neighborhood(&g, 2, 0), vec![2]);
    }

    #[test]
    fn induce_keeps_internal_edges_only() {
        let g = path(5);
        let sub = InducedSubgraph::induce(&g, &[1, 2, 4]);
        assert_eq!(sub.num_nodes(), 3);
        // locals: 0=global1, 1=global2, 2=global4
        assert!(sub.graph.has_edge(0, 1));
        assert!(!sub.graph.has_edge(1, 2), "2-4 not adjacent in path");
        assert_eq!(sub.graph.num_edges(), 2); // 1<->2 both directions
    }

    #[test]
    fn induce_preserves_global_ids() {
        let g = path(5);
        let sub = InducedSubgraph::induce(&g, &[4, 0]);
        assert_eq!(sub.global_ids, vec![4, 0]);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    #[should_panic]
    fn induce_rejects_duplicates() {
        let g = path(3);
        InducedSubgraph::induce(&g, &[1, 1]);
    }
}
