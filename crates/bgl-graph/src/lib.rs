//! # bgl-graph — graph substrate for the BGL reproduction
//!
//! This crate provides the graph data structures and synthetic workload
//! generators that every other crate in the workspace builds on:
//!
//! * [`Csr`] — compressed-sparse-row adjacency, the canonical immutable
//!   graph representation used by samplers, partitioners and the store.
//! * [`GraphBuilder`] — edge-list accumulator that deduplicates, sorts and
//!   freezes into a [`Csr`].
//! * [`DynamicGraph`] — append-capable adjacency for streaming ingestion:
//!   an immutable [`Csr`] base plus a sorted per-node delta, periodically
//!   compacted back into a fresh base.
//! * [`generate`] — R-MAT / Barabási–Albert / Erdős–Rényi / bipartite
//!   generators used to synthesize stand-ins for the paper's datasets
//!   (Ogbn-products, Ogbn-papers and the proprietary User-Item graph).
//! * [`FeatureStore`] — dense `f32` node-feature matrix with
//!   class-correlated synthetic feature generation so that the GNN models in
//!   `bgl-gnn` have real signal to learn.
//! * [`Dataset`] / [`DatasetSpec`] — a labelled graph with train/val/test
//!   splits, mirroring Table 2 of the paper at configurable scale.
//! * [`traversal`] — BFS, multi-source BFS and connected components, the
//!   primitives behind both proximity-aware ordering (§3.2.2) and the
//!   BFS-coarsening partitioner (§3.3).
//! * [`half`] / [`FeaturePrecision`] — IEEE 754 binary16 row storage, which
//!   halves feature bytes on the wire, in caches and on disk.
//! * [`FeatureBlock`] — arena-backed feature rows: decoded fetch buffers are
//!   adopted as segments and referenced through to the minibatch instead of
//!   being re-copied at every hop.
//!
//! Node identifiers are `u32` ([`NodeId`]); this supports graphs up to
//! ~4.2 B nodes, enough for the 1.2 B-node User-Item graph in the paper.

pub mod block;
pub mod builder;
pub mod csr;
pub mod dataset;
pub mod dynamic;
pub mod features;
pub mod generate;
pub mod half;
pub mod subgraph;
pub mod traversal;

pub use block::FeatureBlock;
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use dataset::{Dataset, DatasetSpec, Split};
pub use dynamic::DynamicGraph;
pub use features::FeatureStore;
pub use half::FeaturePrecision;
pub use subgraph::{khop_neighborhood, InducedSubgraph};

/// Node identifier. `u32` keeps adjacency arrays compact while still
/// addressing the billion-node graphs the paper targets.
pub type NodeId = u32;

/// Edge identifier (index into the CSR target array).
pub type EdgeId = u64;
