//! Labelled datasets mirroring Table 2 of the paper at configurable scale.
//!
//! The paper evaluates on Ogbn-products (2.44 M nodes), Ogbn-papers (111 M)
//! and a proprietary 1.2 B-node User-Item graph. None can be used here
//! (size / proprietary), so [`DatasetSpec`] reproduces their *shape*:
//! power-law degree distribution, feature dimension, class count and
//! train/val/test fractions, at a node count that fits this machine.
//! Labels are assigned by a single multi-source BFS flood from random
//! centroid nodes, which makes labels *spatially correlated* — the property
//! that creates the ordering-vs-convergence tension §3.2.2 addresses
//! (BFS-ordered batches would otherwise see skewed label distributions).

use crate::features::FeatureStore;
use crate::generate;
use crate::traversal::multi_source_bfs;
use crate::{Csr, NodeId};
use rand::prelude::*;
use std::sync::Arc;

/// Train/validation/test node-ID split.
#[derive(Clone, Debug, Default)]
pub struct Split {
    pub train: Vec<NodeId>,
    pub val: Vec<NodeId>,
    pub test: Vec<NodeId>,
}

impl Split {
    /// Random disjoint split over `n` nodes with the given fractions.
    pub fn random(n: usize, train: f64, val: f64, test: f64, seed: u64) -> Self {
        assert!(train + val + test <= 1.0 + 1e-9, "fractions exceed 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
        ids.shuffle(&mut rng);
        let nt = (n as f64 * train).round() as usize;
        let nv = (n as f64 * val).round() as usize;
        let ns = (n as f64 * test).round() as usize;
        let mut it = ids.into_iter();
        Split {
            train: it.by_ref().take(nt).collect(),
            val: it.by_ref().take(nv).collect(),
            test: it.by_ref().take(ns.min(n - nt - nv)).collect(),
        }
    }
}

/// A complete labelled graph dataset: structure, features, labels, splits.
#[derive(Clone)]
pub struct Dataset {
    pub name: String,
    pub graph: Arc<Csr>,
    pub features: Arc<FeatureStore>,
    pub labels: Arc<Vec<u16>>,
    pub num_classes: usize,
    pub split: Split,
}

impl Dataset {
    /// Number of nodes in the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Total in-memory footprint (structure + features) in bytes — the
    /// analogue of Table 2's "Memory Storage" row.
    pub fn memory_bytes(&self) -> usize {
        self.graph.storage_bytes()
            + self.features.storage_bytes()
            + self.labels.len() * std::mem::size_of::<u16>()
    }

    /// Empirical label distribution over a set of nodes (sums to 1).
    pub fn label_distribution(&self, nodes: &[NodeId]) -> Vec<f64> {
        let mut hist = vec![0.0f64; self.num_classes];
        for &v in nodes {
            hist[self.labels[v as usize] as usize] += 1.0;
        }
        let total: f64 = hist.iter().sum();
        if total > 0.0 {
            for h in hist.iter_mut() {
                *h /= total;
            }
        }
        hist
    }
}

/// Which of the paper's three evaluation graphs a spec models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Ogbn-products-like: dense (avg degree ~50), 100-dim, 47 classes,
    /// 8% training nodes.
    Products,
    /// Ogbn-papers-like: avg degree ~14.5, 128-dim, 172 classes, ~1%
    /// training nodes.
    Papers,
    /// User-Item-like: bipartite, avg degree ~11, 96-dim, 2 classes, ~17%
    /// training nodes.
    UserItem,
}

/// Scaled-down synthetic stand-in for one of the paper's datasets.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    pub kind: DatasetKind,
    /// Approximate node count (rounded to a power of two for R-MAT).
    pub nodes: usize,
    pub feature_dim: usize,
    pub num_classes: usize,
    pub avg_degree: usize,
    pub train_frac: f64,
    pub val_frac: f64,
    pub test_frac: f64,
    pub seed: u64,
}

impl DatasetSpec {
    /// Ogbn-products stand-in (defaults to ~32 K nodes; paper: 2.44 M).
    pub fn products_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::Products,
            nodes: 1 << 15,
            feature_dim: 100,
            num_classes: 47,
            avg_degree: 50,
            train_frac: 0.08,
            val_frac: 0.16,
            test_frac: 0.76,
            seed: 0xB61,
        }
    }

    /// Ogbn-papers stand-in (defaults to ~128 K nodes; paper: 111 M).
    pub fn papers_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::Papers,
            nodes: 1 << 17,
            feature_dim: 128,
            num_classes: 172,
            avg_degree: 14,
            train_frac: 0.011,
            val_frac: 0.001,
            test_frac: 0.002,
            seed: 0xB62,
        }
    }

    /// User-Item stand-in (defaults to ~256 K nodes; paper: 1.2 B).
    pub fn user_item_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::UserItem,
            nodes: 1 << 18,
            feature_dim: 96,
            num_classes: 2,
            avg_degree: 11,
            train_frac: 0.17,
            val_frac: 0.008,
            test_frac: 0.008,
            seed: 0xB63,
        }
    }

    /// Override the node count (rounded to the nearest power of two, min 16).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes.max(16);
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialize the dataset: generate structure, assign spatially
    /// correlated labels via a multi-source BFS flood from `num_classes`
    /// random centroids, synthesize class-correlated features, and draw the
    /// random split.
    pub fn build(&self) -> Dataset {
        let graph = match self.kind {
            DatasetKind::UserItem => {
                // ~60% users / 40% items keeps degree shape close to a
                // user-majority e-commerce graph.
                let users = self.nodes * 3 / 5;
                let items = self.nodes - users;
                let degree = (self.avg_degree * self.nodes / (2 * users)).max(1);
                generate::user_item(users, items, degree, self.seed)
            }
            _ => {
                // Power-law + community structure: both the degree skew
                // (static caching, hub traffic) and the BFS locality
                // (proximity-aware ordering) of real citation / product
                // graphs. Communities are sized so that one community's
                // training nodes span several consecutive mini-batches —
                // the regime in which temporal locality pays (at paper
                // scale, regions likewise cover many 1000-seed batches).
                let n = 1usize << (self.nodes.max(16) as f64).log2().round() as u32;
                generate::powerlaw_community(
                    generate::PowerlawCommunityConfig {
                        n,
                        communities: (n / 1024).max(4),
                        avg_degree: self.avg_degree.max(2),
                        skew: 0.55,
                        inter: 0.03,
                    },
                    self.seed,
                )
            }
        };
        let n = graph.num_nodes();
        let labels = spatial_labels(&graph, self.num_classes, self.seed ^ 0x1AB);
        let features = FeatureStore::class_correlated(
            &labels,
            self.num_classes,
            self.feature_dim,
            0.5,
            self.seed ^ 0xFEA,
        );
        let split = Split::random(
            n,
            self.train_frac,
            self.val_frac,
            self.test_frac,
            self.seed ^ 0x511,
        );
        Dataset {
            name: format!("{:?}-like({})", self.kind, n),
            graph: Arc::new(graph),
            features: Arc::new(features),
            labels: Arc::new(labels),
            num_classes: self.num_classes,
            split,
        }
    }
}

/// Spatially correlated labels: flood from `num_classes` random centroids;
/// a node's label is the centroid whose flood claims it first. Nodes in
/// components containing no centroid get uniform random labels.
pub fn spatial_labels(g: &Csr, num_classes: usize, seed: u64) -> Vec<u16> {
    assert!(num_classes >= 1 && num_classes <= u16::MAX as usize);
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids: Vec<NodeId> = Vec::with_capacity(num_classes);
    while centroids.len() < num_classes.min(n) {
        let c = rng.random_range(0..n) as NodeId;
        if !centroids.contains(&c) {
            centroids.push(c);
        }
    }
    let flood = multi_source_bfs(g, &centroids, usize::MAX);
    flood
        .assignment
        .iter()
        .map(|&a| {
            if a == u32::MAX {
                rng.random_range(0..num_classes) as u16
            } else {
                (a as usize % num_classes) as u16
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_disjoint_and_sized() {
        let s = Split::random(1000, 0.1, 0.2, 0.3, 7);
        assert_eq!(s.train.len(), 100);
        assert_eq!(s.val.len(), 200);
        assert_eq!(s.test.len(), 300);
        let mut all: Vec<NodeId> =
            s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "splits overlap");
    }

    #[test]
    fn products_like_builds_with_right_shape() {
        let ds = DatasetSpec::products_like().with_nodes(1 << 10).build();
        assert_eq!(ds.num_nodes(), 1 << 10);
        assert_eq!(ds.features.dim(), 100);
        assert_eq!(ds.num_classes, 47);
        assert!(ds.labels.iter().all(|&l| (l as usize) < 47));
        assert!(!ds.split.train.is_empty());
    }

    #[test]
    fn user_item_like_builds() {
        let ds = DatasetSpec::user_item_like().with_nodes(1 << 10).build();
        assert_eq!(ds.num_classes, 2);
        assert_eq!(ds.features.dim(), 96);
        assert!(ds.graph.num_edges() > 0);
    }

    #[test]
    fn labels_are_spatially_correlated() {
        // On a community graph, neighbors should share labels far more often
        // than chance (1/num_classes).
        let g = generate::community_graph(
            generate::CommunityConfig { n: 2000, communities: 20, intra: 8, inter: 1 },
            3,
        );
        let labels = spatial_labels(&g, 10, 99);
        let mut same = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            if labels[u as usize] == labels[v as usize] {
                same += 1;
            }
        }
        let agreement = same as f64 / total as f64;
        assert!(
            agreement > 0.3,
            "neighbor label agreement {:.3} should far exceed 0.1 chance",
            agreement
        );
    }

    #[test]
    fn label_distribution_sums_to_one() {
        let ds = DatasetSpec::products_like().with_nodes(1 << 10).build();
        let dist = ds.label_distribution(&ds.split.train);
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = DatasetSpec::papers_like().with_nodes(1 << 10).build();
        let b = DatasetSpec::papers_like().with_nodes(1 << 10).build();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.split.train, b.split.train);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }
}
