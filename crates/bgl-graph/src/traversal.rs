//! BFS-family traversals.
//!
//! Two of the paper's three contributions are BFS-shaped:
//! proximity-aware ordering (§3.2.2) generates training-node sequences by
//! BFS, and the partitioner (§3.3.1) coarsens the graph by *multi-source*
//! BFS where every source floods its block ID outward until a size cap.

use crate::{Csr, NodeId};
use std::collections::VecDeque;

/// Single-source BFS visit order starting at `root`. Only nodes reachable
/// from `root` appear in the result.
pub fn bfs_order(g: &Csr, root: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[root as usize] = true;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !visited[v as usize] {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// BFS visit order that restarts from the smallest unvisited node whenever
/// the frontier empties, so *every* node appears exactly once. This is the
/// "one full traversal" used to build ordering sequences over graphs with
/// many connected components (the paper notes small components end up at the
/// tail — the motivation for random shifting).
pub fn bfs_full_order(g: &Csr, root: NodeId) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    let mut next_unvisited = 0usize;
    visited[root as usize] = true;
    queue.push_back(root);
    loop {
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in g.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        while next_unvisited < n && visited[next_unvisited] {
            next_unvisited += 1;
        }
        if next_unvisited == n {
            break;
        }
        visited[next_unvisited] = true;
        queue.push_back(next_unvisited as NodeId);
    }
    order
}

/// BFS distances from `root`; unreachable nodes get `u32::MAX`.
pub fn bfs_distances(g: &Csr, root: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[root as usize] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Result of a multi-source capped BFS flood: `assignment[v]` is the index
/// of the source whose flood reached `v` first (`u32::MAX` if unreached,
/// which happens only when every source's block filled up).
pub struct MultiSourceBfs {
    pub assignment: Vec<u32>,
    /// Number of nodes claimed by each source.
    pub block_sizes: Vec<usize>,
}

/// Multi-source BFS with a per-source size cap — the paper's block
/// generation step (§3.3.1): every source floods its block ID to unvisited
/// neighbors, interleaved round-robin so blocks grow at similar rates; a
/// block stops growing once it reaches `cap` nodes or runs out of frontier.
pub fn multi_source_bfs(g: &Csr, sources: &[NodeId], cap: usize) -> MultiSourceBfs {
    let n = g.num_nodes();
    let mut assignment = vec![u32::MAX; n];
    let mut block_sizes = vec![0usize; sources.len()];
    let mut queues: Vec<VecDeque<NodeId>> =
        sources.iter().map(|_| VecDeque::new()).collect();
    for (i, &s) in sources.iter().enumerate() {
        if assignment[s as usize] == u32::MAX {
            assignment[s as usize] = i as u32;
            block_sizes[i] += 1;
            queues[i].push_back(s);
        }
    }
    let mut active = true;
    while active {
        active = false;
        for i in 0..sources.len() {
            if block_sizes[i] >= cap {
                continue;
            }
            if let Some(u) = queues[i].pop_front() {
                active = true;
                for &v in g.neighbors(u) {
                    if assignment[v as usize] == u32::MAX && block_sizes[i] < cap {
                        assignment[v as usize] = i as u32;
                        block_sizes[i] += 1;
                        queues[i].push_back(v);
                    }
                }
            }
        }
    }
    MultiSourceBfs { assignment, block_sizes }
}

/// Connected components by repeated BFS. Returns `(component_id per node,
/// component count)`.
pub fn connected_components(g: &Csr) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start as NodeId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_undirected(i as NodeId, (i + 1) as NodeId);
        }
        b.build()
    }

    fn two_triangles() -> Csr {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_undirected(u, v);
        }
        b.build()
    }

    #[test]
    fn bfs_order_on_path_is_linear() {
        let g = path(5);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0, 4]);
    }

    #[test]
    fn bfs_full_order_covers_all_components() {
        let g = two_triangles();
        let order = bfs_full_order(&g, 4);
        assert_eq!(order.len(), 6);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        // First component traversed fully before jumping.
        assert!(order[..3].iter().all(|&v| v >= 3));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(4);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_distances_unreachable_is_max() {
        let g = two_triangles();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], u32::MAX);
        assert_eq!(d[2], 1);
    }

    #[test]
    fn multi_source_bfs_respects_cap() {
        let g = path(10);
        let res = multi_source_bfs(&g, &[0, 9], 3);
        assert!(res.block_sizes.iter().all(|&s| s <= 3));
        assert_eq!(res.assignment[0], 0);
        assert_eq!(res.assignment[9], 1);
    }

    #[test]
    fn multi_source_bfs_covers_connected_graph_without_cap() {
        let g = path(10);
        let res = multi_source_bfs(&g, &[0, 5], usize::MAX);
        assert!(res.assignment.iter().all(|&a| a != u32::MAX));
        assert_eq!(res.block_sizes.iter().sum::<usize>(), 10);
    }

    #[test]
    fn components_counted() {
        let g = two_triangles();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
    }
}
