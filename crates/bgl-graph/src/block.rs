//! Arena-backed feature rows: reference, don't re-`Vec`.
//!
//! The old fetch path copied every feature row three times on its way into a
//! minibatch: wire frame → per-server row buffer → batch-order reassembly
//! buffer → minibatch matrix. [`FeatureBlock`] kills the middle copies. A
//! decoded buffer (one per store-server response) is *adopted* as a segment
//! — ownership moves, bytes don't — and a `(segment, row)` index maps each
//! logical batch row onto the segment that holds it. Consumers read rows by
//! reference ([`FeatureBlock::row`]) straight out of the adopted buffers;
//! the only remaining copy is the one that materializes the minibatch
//! matrix / cache slot, which must happen anyway.
//!
//! ## Ownership rules
//!
//! * A segment buffer, once adopted, is immutable and owned by the block —
//!   the producer must not keep any handle to it.
//! * Rows never span segments; `buf.len()` must be a multiple of `dim`.
//! * Unplaced rows read as zeros (segment 0 is a shared zero row). This is
//!   exactly the degraded-fetch semantic: a row the cluster could not fetch
//!   stays all-zero without a dedicated buffer.

/// A batch of feature rows backed by adopted segments.
#[derive(Debug, Clone)]
pub struct FeatureBlock {
    dim: usize,
    /// Segment 0 is one shared zero row; adopted segments follow.
    segments: Vec<Vec<f32>>,
    /// `(segment, row-within-segment)` per logical row.
    index: Vec<(u32, u32)>,
}

impl FeatureBlock {
    /// A block of `rows` logical rows of width `dim`, all initially zero
    /// (i.e. unplaced / degraded).
    pub fn new(dim: usize, rows: usize) -> Self {
        FeatureBlock {
            dim,
            segments: vec![vec![0.0; dim]],
            index: vec![(0, 0); rows],
        }
    }

    /// Wrap an already batch-ordered row buffer (e.g. a test fixture or a
    /// single-source fetch) without copying it.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of `dim` (for `dim > 0`).
    pub fn from_rows(dim: usize, buf: Vec<f32>) -> Self {
        let rows = if dim == 0 {
            0
        } else {
            assert_eq!(buf.len() % dim, 0, "buffer is not whole rows");
            buf.len() / dim
        };
        let mut b = FeatureBlock::new(dim, rows);
        let seg = b.adopt_segment(buf);
        for i in 0..rows {
            b.index[i] = (seg as u32, i as u32);
        }
        b
    }

    /// Take ownership of a decoded row buffer; returns its segment id for
    /// use with [`FeatureBlock::place`]. The bytes are not copied.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of `dim` (for `dim > 0`).
    pub fn adopt_segment(&mut self, buf: Vec<f32>) -> usize {
        if self.dim > 0 {
            assert_eq!(buf.len() % self.dim, 0, "segment is not whole rows");
        }
        self.segments.push(buf);
        self.segments.len() - 1
    }

    /// Map logical row `pos` onto row `row` of segment `seg`.
    ///
    /// # Panics
    /// Panics if `pos`, `seg` or `row` is out of range.
    pub fn place(&mut self, pos: usize, seg: usize, row: usize) {
        assert!(seg < self.segments.len(), "segment {seg} not adopted");
        if let Some(nrows) = self.segments[seg].len().checked_div(self.dim) {
            assert!(row < nrows, "row {row} out of segment ({nrows} rows)");
        }
        self.index[pos] = (seg as u32, row as u32);
    }

    /// Row width.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of logical rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the block holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Borrow logical row `i` out of whichever segment holds it.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let (seg, row) = self.index[i];
        let start = row as usize * self.dim;
        &self.segments[seg as usize][start..start + self.dim]
    }

    /// Copy every row, in order, into `out` (must be `len·dim` long). The
    /// single materialization copy consumers are allowed.
    pub fn copy_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len() * self.dim, "output size mismatch");
        for (i, chunk) in out.chunks_exact_mut(self.dim.max(1)).enumerate() {
            if self.dim > 0 {
                chunk.copy_from_slice(self.row(i));
            }
        }
    }

    /// Flatten to a fresh batch-ordered `Vec` (tests / compatibility).
    pub fn to_vec(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len() * self.dim];
        self.copy_into(&mut out);
        out
    }

    /// Bytes held by adopted segments (excludes the shared zero row).
    pub fn segment_bytes(&self) -> usize {
        self.segments[1..]
            .iter()
            .map(|s| s.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unplaced_rows_read_zero() {
        let b = FeatureBlock::new(3, 4);
        assert_eq!(b.len(), 4);
        for i in 0..4 {
            assert_eq!(b.row(i), &[0.0, 0.0, 0.0]);
        }
    }

    #[test]
    fn adopted_segments_are_referenced_not_copied() {
        let mut b = FeatureBlock::new(2, 4);
        // Two "server responses" in arbitrary order.
        let s1 = b.adopt_segment(vec![1.0, 2.0, 3.0, 4.0]); // rows for pos 2, 0
        let s2 = b.adopt_segment(vec![5.0, 6.0]); // row for pos 3
        b.place(2, s1, 0);
        b.place(0, s1, 1);
        b.place(3, s2, 0);
        assert_eq!(b.row(0), &[3.0, 4.0]);
        assert_eq!(b.row(1), &[0.0, 0.0]); // degraded
        assert_eq!(b.row(2), &[1.0, 2.0]);
        assert_eq!(b.row(3), &[5.0, 6.0]);
        assert_eq!(b.to_vec(), vec![3.0, 4.0, 0.0, 0.0, 1.0, 2.0, 5.0, 6.0]);
        assert_eq!(b.segment_bytes(), 6 * 4);
    }

    #[test]
    fn from_rows_is_identity_order() {
        let b = FeatureBlock::from_rows(3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(0), &[1., 2., 3.]);
        assert_eq!(b.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn copy_into_round_trips() {
        let b = FeatureBlock::from_rows(2, vec![9., 8., 7., 6.]);
        let mut out = [0.0f32; 4];
        b.copy_into(&mut out);
        assert_eq!(out, [9., 8., 7., 6.]);
    }

    #[test]
    fn empty_and_zero_dim_blocks() {
        let b = FeatureBlock::from_rows(4, Vec::new());
        assert!(b.is_empty());
        assert_eq!(b.to_vec(), Vec::<f32>::new());
        let z = FeatureBlock::new(0, 0);
        assert_eq!(z.len(), 0);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn ragged_segment_is_rejected() {
        let mut b = FeatureBlock::new(3, 1);
        b.adopt_segment(vec![1.0, 2.0]);
    }
}
