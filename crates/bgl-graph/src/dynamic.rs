//! Append-capable adjacency: a frozen [`Csr`] base plus a mutation delta.
//!
//! Streaming ingestion (ROADMAP item 4) must add nodes and edges to a
//! *live* graph without rewriting the CSR arrays on every arrival. The
//! classic LSM-style split applies: the immutable base everyone already
//! holds an `Arc` to stays untouched, arriving arcs accumulate in a small
//! per-node overlay, and readers see the merged view. [`DynamicGraph::
//! snapshot`] compacts base + delta back into a fresh [`Csr`] (the "re-
//! merge" the ingest subsystem runs periodically), after which the delta
//! is empty again.
//!
//! The merged view upholds the same invariants as [`Csr`]: per-node
//! neighbor lists are sorted ascending and duplicate-free, and inserting
//! an arc that already exists (in the base *or* the delta) is a detected
//! no-op — the ingest path surfaces it as a typed rejection rather than
//! silently double-counting the edge.

use crate::csr::Csr;
use crate::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// A mutable graph: immutable CSR base + append delta.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    base: Arc<Csr>,
    /// Arcs appended since the base was frozen, keyed by source; each list
    /// is sorted ascending and unique, and disjoint from the base slice.
    delta: HashMap<NodeId, Vec<NodeId>>,
    /// Total node count (base nodes + appended nodes).
    num_nodes: usize,
    /// Arcs living in the delta (directed count, like [`Csr::num_edges`]).
    delta_arcs: usize,
}

impl DynamicGraph {
    /// Wrap a frozen base. The `Arc` is shared, not copied.
    pub fn new(base: Arc<Csr>) -> Self {
        let num_nodes = base.num_nodes();
        DynamicGraph { base, delta: HashMap::new(), num_nodes, delta_arcs: 0 }
    }

    /// The frozen base this delta overlays.
    pub fn base(&self) -> &Arc<Csr> {
        &self.base
    }

    /// Total nodes, including appended ones.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total directed arcs (base + delta).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.delta_arcs
    }

    /// Nodes appended since the base was frozen.
    pub fn added_nodes(&self) -> usize {
        self.num_nodes - self.base.num_nodes()
    }

    /// Directed arcs appended since the base was frozen.
    pub fn added_arcs(&self) -> usize {
        self.delta_arcs
    }

    /// True when no mutation has happened since the last snapshot.
    pub fn is_clean(&self) -> bool {
        self.delta_arcs == 0 && self.added_nodes() == 0
    }

    /// Append a new isolated node, returning its ID (always the next
    /// dense ID — node IDs are never recycled).
    pub fn add_node(&mut self) -> NodeId {
        let id = self.num_nodes as NodeId;
        self.num_nodes += 1;
        id
    }

    /// Insert the directed arc `u -> v`. Returns `false` (and changes
    /// nothing) if the arc already exists in the base or the delta.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range — the ingest layer
    /// validates IDs before calling (out-of-range is a *typed* wire error
    /// there, an invariant violation here).
    pub fn add_arc(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "arc {}->{} out of range (n={})",
            u,
            v,
            self.num_nodes
        );
        if (u as usize) < self.base.num_nodes() && self.base.has_edge(u, v) {
            return false;
        }
        let list = self.delta.entry(u).or_default();
        match list.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, v);
                self.delta_arcs += 1;
                true
            }
        }
    }

    /// Insert the undirected edge `{u, v}` (both arcs, matching
    /// [`crate::GraphBuilder`]'s convention). Returns `false` if *both*
    /// arcs already existed. Self-loops insert a single arc.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let a = self.add_arc(u, v);
        let b = if u == v { false } else { self.add_arc(v, u) };
        a || b
    }

    /// Degree of `v` in the merged view.
    pub fn degree(&self, v: NodeId) -> usize {
        let base = if (v as usize) < self.base.num_nodes() {
            self.base.degree(v)
        } else {
            0
        };
        base + self.delta.get(&v).map_or(0, Vec::len)
    }

    /// Whether the merged view contains the arc `u -> v`.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) < self.base.num_nodes() && self.base.has_edge(u, v) {
            return true;
        }
        self.delta
            .get(&u)
            .is_some_and(|l| l.binary_search(&v).is_ok())
    }

    /// The node's base neighbor slice, when the delta holds no arcs for it
    /// — the zero-copy fast path samplers take for untouched nodes. `None`
    /// when the merged view differs from the base (delta arcs, or an
    /// appended node): use [`DynamicGraph::neighbors_into`] then.
    pub fn clean_neighbors(&self, v: NodeId) -> Option<&[NodeId]> {
        if (v as usize) < self.base.num_nodes() && !self.delta.contains_key(&v) {
            Some(self.base.neighbors(v))
        } else {
            None
        }
    }

    /// Fill `out` with the merged, sorted, duplicate-free neighborhood of
    /// `v` (clearing it first). The merge is a linear two-pointer pass —
    /// both inputs are already sorted.
    pub fn neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let base: &[NodeId] = if (v as usize) < self.base.num_nodes() {
            self.base.neighbors(v)
        } else {
            &[]
        };
        match self.delta.get(&v) {
            None => out.extend_from_slice(base),
            Some(extra) => {
                out.reserve(base.len() + extra.len());
                let (mut i, mut j) = (0, 0);
                while i < base.len() && j < extra.len() {
                    // Disjointness is an invariant (add_arc checks the
                    // base), so strict interleave, no equal case.
                    if base[i] < extra[j] {
                        out.push(base[i]);
                        i += 1;
                    } else {
                        out.push(extra[j]);
                        j += 1;
                    }
                }
                out.extend_from_slice(&base[i..]);
                out.extend_from_slice(&extra[j..]);
            }
        }
    }

    /// Nodes whose neighborhood changed since the base was frozen: every
    /// delta source plus every appended node. Sorted ascending. This is
    /// the set the ingest layer feeds to cache invalidation and the
    /// incremental PO reorder.
    pub fn dirty_nodes(&self) -> Vec<NodeId> {
        let mut dirty: Vec<NodeId> = self.delta.keys().copied().collect();
        dirty.extend(self.base.num_nodes() as NodeId..self.num_nodes as NodeId);
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Compact base + delta into a fresh [`Csr`] and make it the new
    /// base, leaving the delta empty. Returns the new base.
    pub fn snapshot(&mut self) -> Arc<Csr> {
        if self.is_clean() {
            return Arc::clone(&self.base);
        }
        let n = self.num_nodes;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut targets = Vec::with_capacity(self.num_edges());
        let mut scratch = Vec::new();
        for v in 0..n as NodeId {
            self.neighbors_into(v, &mut scratch);
            targets.extend_from_slice(&scratch);
            offsets.push(targets.len() as u64);
        }
        let merged = Arc::new(Csr::from_parts(offsets, targets));
        self.base = Arc::clone(&merged);
        self.delta.clear();
        self.delta_arcs = 0;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Arc<Csr> {
        // 0 -> {1,2}, 1 -> {0}, 2 -> {0,3}, 3 -> {2}, 4 isolated
        Arc::new(Csr::from_parts(vec![0, 2, 3, 5, 6, 6], vec![1, 2, 0, 0, 3, 2]))
    }

    #[test]
    fn merged_view_interleaves_sorted() {
        let mut g = DynamicGraph::new(base());
        assert!(g.add_edge(0, 4));
        assert!(g.add_edge(0, 3));
        let mut nbrs = Vec::new();
        g.neighbors_into(0, &mut nbrs);
        assert_eq!(nbrs, vec![1, 2, 3, 4]);
        g.neighbors_into(4, &mut nbrs);
        assert_eq!(nbrs, vec![0]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.num_edges(), 6 + 4);
    }

    #[test]
    fn duplicate_arcs_rejected_against_base_and_delta() {
        let mut g = DynamicGraph::new(base());
        assert!(!g.add_arc(0, 1), "base arc is a duplicate");
        assert!(g.add_arc(1, 3));
        assert!(!g.add_arc(1, 3), "delta arc is a duplicate");
        assert_eq!(g.added_arcs(), 1);
        // add_edge where one direction exists still adds the other.
        assert!(g.add_edge(3, 1), "3->1 is new even though 1->3 exists");
        assert!(g.has_arc(3, 1) && g.has_arc(1, 3));
    }

    #[test]
    fn appended_nodes_get_dense_ids() {
        let mut g = DynamicGraph::new(base());
        assert_eq!(g.add_node(), 5);
        assert_eq!(g.add_node(), 6);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.degree(6), 0);
        assert!(g.add_edge(6, 1));
        let mut nbrs = Vec::new();
        g.neighbors_into(6, &mut nbrs);
        assert_eq!(nbrs, vec![1]);
    }

    #[test]
    fn clean_neighbors_is_base_slice_or_none() {
        let mut g = DynamicGraph::new(base());
        assert_eq!(g.clean_neighbors(0), Some(&[1u32, 2][..]));
        let n = g.add_node();
        assert_eq!(g.clean_neighbors(n), None, "appended node needs a merge");
        g.add_edge(0, 3);
        assert_eq!(g.clean_neighbors(0), None, "delta-touched node needs a merge");
        assert_eq!(g.clean_neighbors(1), Some(&[0u32][..]), "untouched stays zero-copy");
    }

    #[test]
    #[should_panic]
    fn out_of_range_arc_panics() {
        DynamicGraph::new(base()).add_arc(0, 99);
    }

    #[test]
    fn dirty_nodes_cover_delta_sources_and_new_nodes() {
        let mut g = DynamicGraph::new(base());
        let n = g.add_node();
        g.add_edge(2, n);
        assert_eq!(g.dirty_nodes(), vec![2, n]);
    }

    #[test]
    fn snapshot_compacts_and_resets_delta() {
        let mut g = DynamicGraph::new(base());
        let n = g.add_node();
        g.add_edge(n, 0);
        g.add_edge(3, 4);
        let merged = g.snapshot();
        assert!(g.is_clean());
        assert_eq!(merged.num_nodes(), 6);
        assert_eq!(merged.num_edges(), 6 + 4);
        assert_eq!(merged.neighbors(0), &[1, 2, n]);
        assert_eq!(merged.neighbors(3), &[2, 4]);
        assert_eq!(merged.neighbors(n as NodeId), &[0]);
        // Clean snapshot is free: same Arc back.
        let again = g.snapshot();
        assert!(Arc::ptr_eq(&merged, &again));
        // The merged CSR passes from_parts validation by construction and
        // further mutation starts a fresh delta on the new base.
        assert!(!g.add_arc(3, 4), "snapshotted arc is now a base duplicate");
        assert!(g.add_edge(4, n));
        assert_eq!(g.added_arcs(), 2);
    }
}
