//! Compressed-sparse-row adjacency.
//!
//! [`Csr`] is the immutable, cache-friendly graph representation every other
//! crate consumes. It stores out-neighbors; for the undirected graphs used
//! throughout the paper's evaluation, [`crate::GraphBuilder`] inserts both
//! directions so that `neighbors(v)` is the full neighborhood of `v`.

use crate::NodeId;

/// Immutable compressed-sparse-row graph.
///
/// Invariants (checked by `debug_assert!` in [`Csr::from_parts`] and
/// exhaustively by the property tests):
///
/// * `offsets.len() == num_nodes + 1`
/// * `offsets` is non-decreasing, `offsets[0] == 0`,
///   `offsets[num_nodes] == targets.len()`
/// * every entry of `targets` is `< num_nodes`
/// * within each node's slice, targets are sorted ascending and unique
///   (the builder guarantees this; ad-hoc constructions may relax it).
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Build a CSR directly from its two arrays.
    ///
    /// # Panics
    /// Panics if the structural invariants do not hold (offset length,
    /// monotonicity, target range).
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets[0] must be 0");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            targets.len(),
            "last offset must equal target count"
        );
        let n = offsets.len() - 1;
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "offsets must be non-decreasing");
        }
        for &t in &targets {
            assert!((t as usize) < n, "target {} out of range (n={})", t, n);
        }
        Csr { offsets, targets }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (arcs). For an undirected graph built with
    /// both directions this is twice the number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The sorted out-neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Whether the directed edge `u -> v` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterate all arcs as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum degree and the node achieving it. `None` for empty graphs.
    pub fn max_degree(&self) -> Option<(NodeId, usize)> {
        (0..self.num_nodes() as NodeId)
            .map(|v| (v, self.degree(v)))
            .max_by_key(|&(_, d)| d)
    }

    /// Nodes sorted by descending degree — the ranking PaGraph's static
    /// cache policy pre-loads (§2.3, §5.3.2 of the paper).
    pub fn nodes_by_degree_desc(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.num_nodes() as NodeId).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.degree(v)));
        order
    }

    /// Raw offsets array (for serialization in `bgl-store`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw targets array (for serialization in `bgl-store`).
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// In-memory size in bytes of the adjacency arrays.
    pub fn storage_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }

    /// Reverse graph: an arc `u -> v` becomes `v -> u`. For the symmetric
    /// graphs used in the evaluation this is a (re-sorted) copy.
    pub fn reversed(&self) -> Csr {
        let n = self.num_nodes();
        let mut deg = vec![0u64; n + 1];
        for &t in &self.targets {
            deg[t as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg.clone();
        let mut cursor = deg;
        let mut targets = vec![0 as NodeId; self.targets.len()];
        for (u, v) in self.edges() {
            let slot = cursor[v as usize];
            targets[slot as usize] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Csr { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // 0 -> {1,2}, 1 -> {0}, 2 -> {0,3}, 3 -> {2}, 4 isolated
        Csr::from_parts(vec![0, 2, 3, 5, 6, 6], vec![1, 2, 0, 0, 3, 2])
    }

    #[test]
    fn basic_shape() {
        let g = small();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(2), &[0, 3]);
    }

    #[test]
    fn has_edge_works() {
        let g = small();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(4, 0));
    }

    #[test]
    fn edges_iterator_matches_counts() {
        let g = small();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e.len(), g.num_edges());
        assert_eq!(e[0], (0, 1));
        assert_eq!(*e.last().unwrap(), (3, 2));
    }

    #[test]
    fn reversed_inverts_arcs() {
        let g = small();
        let r = g.reversed();
        assert_eq!(r.num_nodes(), g.num_nodes());
        assert_eq!(r.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u), "missing reversed arc {}->{}", v, u);
        }
    }

    #[test]
    fn degree_ranking_descends() {
        let g = small();
        let order = g.nodes_by_degree_desc();
        for w in order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(1), 0);
        assert!(g.max_degree().unwrap().1 == 0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_offsets() {
        Csr::from_parts(vec![0, 2, 1], vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_target() {
        Csr::from_parts(vec![0, 1], vec![5]);
    }
}
