//! Synthetic graph generators.
//!
//! The paper's datasets (Table 2) are either enormous public graphs
//! (Ogbn-papers: 111 M nodes, 279 GB on disk) or proprietary (User-Item:
//! 1.2 B nodes). Per the substitution rule in DESIGN.md we reproduce their
//! *shape* — power-law degree skew, community structure, average degree,
//! train-node fraction — at configurable scale with the generators here.
//! Everything is deterministic given the seed.

use crate::{Csr, GraphBuilder, NodeId};
use rand::prelude::*;

/// R-MAT recursive-matrix generator (Chakrabarti et al.), the standard way
/// to synthesize power-law graphs with community-like self-similarity.
///
/// Probabilities `(a, b, c, d)` must sum to ~1. The classic skewed setting
/// `(0.57, 0.19, 0.19, 0.05)` gives degree distributions close to real
/// social/web graphs — the regime in which PaGraph's static cache works and
/// BGL's FIFO-without-ordering does not (paper §2.3, Fig. 5).
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of node count: the graph has `2^scale` nodes.
    pub scale: u32,
    /// Average *undirected* degree; `edge_factor * 2^scale` edges are drawn.
    pub edge_factor: usize,
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Per-level probability noise, which avoids exactly repeated structure.
    pub noise: f64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.05,
        }
    }
}

/// Generate an undirected R-MAT graph. Duplicate edges and self-loops are
/// removed by the builder, so the realized edge count is slightly below
/// `edge_factor * 2^scale`.
pub fn rmat(cfg: RmatConfig, seed: u64) -> Csr {
    let n = 1usize << cfg.scale;
    let m = cfg.edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, 2 * m);
    for _ in 0..m {
        let (mut x0, mut x1) = (0usize, n);
        let (mut y0, mut y1) = (0usize, n);
        while x1 - x0 > 1 {
            // Jitter quadrant probabilities per level.
            let na = cfg.a + cfg.noise * (rng.random::<f64>() - 0.5);
            let nb = cfg.b + cfg.noise * (rng.random::<f64>() - 0.5);
            let nc = cfg.c + cfg.noise * (rng.random::<f64>() - 0.5);
            let total = na + nb + nc + (1.0 - cfg.a - cfg.b - cfg.c);
            let r = rng.random::<f64>() * total;
            let (mx, my) = ((x0 + x1) / 2, (y0 + y1) / 2);
            if r < na {
                x1 = mx;
                y1 = my;
            } else if r < na + nb {
                x1 = mx;
                y0 = my;
            } else if r < na + nb + nc {
                x0 = mx;
                y1 = my;
            } else {
                x0 = mx;
                y0 = my;
            }
        }
        builder.add_undirected(x0 as NodeId, y0 as NodeId);
    }
    builder.build()
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_attach` existing nodes with probability proportional to degree.
/// Produces a clean power law; used by tests that need guaranteed hubs.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Csr {
    assert!(m_attach >= 1 && n > m_attach, "need n > m_attach >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, 2 * n * m_attach);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique over the first m_attach + 1 nodes.
    for u in 0..=(m_attach as NodeId) {
        for v in 0..u {
            builder.add_undirected(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (m_attach + 1)..n {
        let mut chosen = Vec::with_capacity(m_attach);
        while chosen.len() < m_attach {
            let v = endpoints[rng.random_range(0..endpoints.len())];
            if v != u as NodeId && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            builder.add_undirected(u as NodeId, v);
            endpoints.push(u as NodeId);
            endpoints.push(v);
        }
    }
    builder.build()
}

/// Erdős–Rényi G(n, m): `m` undirected edges drawn uniformly. No skew, no
/// communities — the adversarial baseline for locality-based techniques.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, 2 * m);
    for _ in 0..m {
        let u = rng.random_range(0..n) as NodeId;
        let v = rng.random_range(0..n) as NodeId;
        builder.add_undirected(u, v);
    }
    builder.build()
}

/// Planted-partition ("stochastic block model lite") generator: `n` nodes in
/// `communities` equal-size groups; each node draws `intra` neighbors inside
/// its group and `inter` outside. This gives the explicit community
/// structure that makes proximity-aware ordering's locality win visible and
/// makes label distribution per mini-batch non-uniform under BFS ordering —
/// exactly the tension §3.2.2 of the paper resolves.
#[derive(Clone, Copy, Debug)]
pub struct CommunityConfig {
    pub n: usize,
    pub communities: usize,
    /// Average intra-community degree per node.
    pub intra: usize,
    /// Average cross-community degree per node.
    pub inter: usize,
}

pub fn community_graph(cfg: CommunityConfig, seed: u64) -> Csr {
    assert!(cfg.communities >= 1 && cfg.n >= cfg.communities);
    let mut rng = StdRng::seed_from_u64(seed);
    let size = cfg.n / cfg.communities;
    let mut builder =
        GraphBuilder::with_capacity(cfg.n, cfg.n * (cfg.intra + cfg.inter));
    for u in 0..cfg.n {
        let comm = (u / size).min(cfg.communities - 1);
        let lo = comm * size;
        let hi = if comm == cfg.communities - 1 { cfg.n } else { lo + size };
        for _ in 0..cfg.intra {
            let v = rng.random_range(lo..hi);
            if v != u {
                builder.add_undirected(u as NodeId, v as NodeId);
            }
        }
        for _ in 0..cfg.inter {
            let v = rng.random_range(0..cfg.n);
            if v != u {
                builder.add_undirected(u as NodeId, v as NodeId);
            }
        }
    }
    builder.build()
}

/// Power-law community graph: a degree-weighted planted partition.
///
/// Real citation/social graphs combine two properties the BGL experiments
/// depend on: *power-law degree skew* (what static caching exploits) and
/// *community structure* (what BFS-based proximity ordering exploits).
/// R-MAT delivers the first but its self-similar wiring has little usable
/// BFS locality, so the Ogbn-products/papers stand-ins use this generator:
/// nodes get Zipf-like weights; each edge picks a community, then both
/// endpoints within it weight-proportionally (Chung–Lu style), except a
/// `inter` fraction of edges that pick the second endpoint globally.
#[derive(Clone, Copy, Debug)]
pub struct PowerlawCommunityConfig {
    pub n: usize,
    pub communities: usize,
    /// Average undirected degree.
    pub avg_degree: usize,
    /// Zipf exponent for node weights (≈0.8 gives realistic skew).
    pub skew: f64,
    /// Fraction of edges whose far endpoint is sampled globally.
    pub inter: f64,
}

pub fn powerlaw_community(cfg: PowerlawCommunityConfig, seed: u64) -> Csr {
    assert!(cfg.communities >= 1 && cfg.n >= cfg.communities);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.n;
    let k = cfg.communities;
    let size = n / k;
    // Node weights: Zipf over the node's rank *within its community*, so
    // every community has its own hubs.
    let weight = |v: usize| -> f64 {
        let rank = (v % size.max(1)) + 1;
        (rank as f64).powf(-cfg.skew)
    };
    // Per-community cumulative weights for O(log size) weighted draws.
    let mut cumulative: Vec<Vec<f64>> = Vec::with_capacity(k);
    for c in 0..k {
        let lo = c * size;
        let hi = if c == k - 1 { n } else { lo + size };
        let mut acc = 0.0;
        let cum: Vec<f64> = (lo..hi)
            .map(|v| {
                acc += weight(v);
                acc
            })
            .collect();
        cumulative.push(cum);
    }
    let draw_in = |c: usize, rng: &mut StdRng| -> NodeId {
        let cum = &cumulative[c];
        let total = *cum.last().unwrap();
        let x = rng.random::<f64>() * total;
        let idx = cum.partition_point(|&w| w < x).min(cum.len() - 1);
        (c * size + idx) as NodeId
    };
    let m = n * cfg.avg_degree / 2;
    let mut builder = GraphBuilder::with_capacity(n, 2 * m);
    for _ in 0..m {
        let c = rng.random_range(0..k);
        let u = draw_in(c, &mut rng);
        let v = if rng.random::<f64>() < cfg.inter {
            // Inter-community edges are *ring-local*: communities sit on a
            // ring and cross edges go a geometrically distributed number of
            // steps away. Real graphs have locality at every scale
            // (communities of communities); without it, BFS order has no
            // usable structure above the single-community level and the
            // temporal locality that proximity-aware ordering exploits
            // (§3.2.2) cannot exist.
            let mut step = 1usize;
            while step < k / 2 && rng.random_bool(0.5) {
                step += 1;
            }
            let dir: isize = if rng.random_bool(0.5) { 1 } else { -1 };
            let c2 = ((c as isize + dir * step as isize).rem_euclid(k as isize)) as usize;
            draw_in(c2, &mut rng)
        } else {
            draw_in(c, &mut rng)
        };
        if u != v {
            builder.add_undirected(u, v);
        }
    }
    builder.build()
}

/// Bipartite user–item graph in the shape of the paper's proprietary
/// ByteDance *User-Item* dataset: `users + items` nodes, power-law item
/// popularity (Zipf), each user connecting to `degree` items.
/// Node IDs: users are `0..users`, items are `users..users+items`.
pub fn user_item(users: usize, items: usize, degree: usize, seed: u64) -> Csr {
    let n = users + items;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, 2 * users * degree);
    // Interest clusters: users come in segments, each preferring its own
    // item segment (real e-commerce graphs have strong user-interest
    // locality — the property BGL's partitioner exploits on the paper's
    // User-Item workload). Within a segment, item popularity is Zipf-ish
    // via inverse-CDF on ranks (log-uniform rank distribution, cheap and
    // heavy-headed); 10% of edges go to the global item catalogue.
    let segments = (users / 2048).max(1);
    let useg = users / segments;
    let iseg = (items / segments).max(1);
    for u in 0..users {
        let seg = (u / useg.max(1)).min(segments - 1);
        for _ in 0..degree {
            let z = rng.random::<f64>();
            let (lo, span) = if rng.random::<f64>() < 0.9 {
                (seg * iseg, iseg)
            } else {
                (0, items)
            };
            let rank = ((span as f64).powf(z) - 1.0) as usize;
            let item = users + lo + rank.min(span - 1);
            builder.add_undirected(u as NodeId, item as NodeId);
        }
    }
    builder.build()
}

/// Gini coefficient of the degree distribution — a single-number skew
/// measure the tests use to verify "power-law-like" (high Gini) vs
/// "uniform-like" (low Gini) generator output.
pub fn degree_gini(g: &Csr) -> f64 {
    let mut degs: Vec<usize> = (0..g.num_nodes() as NodeId).map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    let n = degs.len() as f64;
    let total: f64 = degs.iter().map(|&d| d as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut cum = 0.0;
    let mut weighted = 0.0;
    for (i, &d) in degs.iter().enumerate() {
        cum += d as f64;
        weighted += cum;
        let _ = i;
    }
    // Gini = 1 - 2 * B where B is the area under the Lorenz curve.
    1.0 - 2.0 * (weighted / (n * total)) + 1.0 / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let cfg = RmatConfig { scale: 8, edge_factor: 8, ..Default::default() };
        let g1 = rmat(cfg, 7);
        let g2 = rmat(cfg, 7);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.neighbors(3), g2.neighbors(3));
    }

    #[test]
    fn rmat_different_seeds_differ() {
        let cfg = RmatConfig { scale: 8, edge_factor: 8, ..Default::default() };
        let g1 = rmat(cfg, 1);
        let g2 = rmat(cfg, 2);
        assert_ne!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rmat_is_skewed_er_is_not() {
        let cfg = RmatConfig { scale: 10, edge_factor: 16, ..Default::default() };
        let skewed = degree_gini(&rmat(cfg, 3));
        let flat = degree_gini(&erdos_renyi(1024, 16 * 1024, 3));
        assert!(
            skewed > flat + 0.15,
            "rmat gini {} should exceed ER gini {}",
            skewed,
            flat
        );
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let g = barabasi_albert(2000, 4, 11);
        let (_, dmax) = g.max_degree().unwrap();
        assert!(dmax > 40, "BA should grow hubs, max degree = {}", dmax);
        // Minimum degree is m_attach (every new node attaches m times).
        let dmin = (0..g.num_nodes() as NodeId)
            .map(|v| g.degree(v))
            .min()
            .unwrap();
        assert!(dmin >= 4);
    }

    #[test]
    fn community_graph_mostly_intra() {
        let cfg = CommunityConfig { n: 1000, communities: 10, intra: 8, inter: 1 };
        let g = community_graph(cfg, 5);
        let size = cfg.n / cfg.communities;
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            if (u as usize) / size == (v as usize) / size {
                intra += 1;
            }
        }
        assert!(
            intra as f64 / total as f64 > 0.75,
            "expected mostly intra-community edges, got {}/{}",
            intra,
            total
        );
    }

    #[test]
    fn user_item_is_bipartite() {
        let (users, items) = (500, 200);
        let g = user_item(users, items, 5, 9);
        for (u, v) in g.edges() {
            let u_is_user = (u as usize) < users;
            let v_is_user = (v as usize) < users;
            assert_ne!(u_is_user, v_is_user, "edge {}-{} not bipartite", u, v);
        }
    }

    #[test]
    fn user_item_item_popularity_is_skewed() {
        let (users, items) = (2000, 500);
        let g = user_item(users, items, 8, 13);
        let mut item_degs: Vec<usize> =
            (users..users + items).map(|v| g.degree(v as NodeId)).collect();
        item_degs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = item_degs.iter().take(items / 10).sum();
        let all: usize = item_degs.iter().sum();
        assert!(
            top10 as f64 / all as f64 > 0.3,
            "top-10% items should hold >30% of edges, got {:.2}",
            top10 as f64 / all as f64
        );
    }
}
