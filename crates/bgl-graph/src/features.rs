//! Dense node-feature storage.
//!
//! Features dominate the data volume in GNN training (the paper's running
//! example: 195 MB of features vs 5 MB of structure per mini-batch), so the
//! store keeps them in one contiguous `f32` buffer — the same layout the
//! cache engine's buffer slots and the wire codec use.

use crate::NodeId;
use rand::prelude::*;

/// Row-major `num_nodes x dim` feature matrix.
#[derive(Clone, Debug)]
pub struct FeatureStore {
    dim: usize,
    data: Vec<f32>,
}

impl FeatureStore {
    /// Zero-initialized feature store.
    pub fn zeros(num_nodes: usize, dim: usize) -> Self {
        FeatureStore { dim, data: vec![0.0; num_nodes * dim] }
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_raw(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "feature dim must be positive");
        assert_eq!(data.len() % dim, 0, "buffer not a whole number of rows");
        FeatureStore { dim, data }
    }

    /// Class-correlated Gaussian features: each class has a random centroid
    /// on the unit sphere, and node features are `centroid + noise`. This
    /// gives the GNN models genuine signal, so the accuracy experiments
    /// (Table 5 / Fig. 16) exercise real learning rather than noise-fitting.
    pub fn class_correlated(
        labels: &[u16],
        num_classes: usize,
        dim: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = vec![0.0f32; num_classes * dim];
        for c in centroids.iter_mut() {
            *c = sample_gaussian(&mut rng);
        }
        // Normalize each centroid row.
        for k in 0..num_classes {
            let row = &mut centroids[k * dim..(k + 1) * dim];
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
        let mut data = vec![0.0f32; labels.len() * dim];
        for (i, &label) in labels.iter().enumerate() {
            let c = &centroids[(label as usize) * dim..(label as usize + 1) * dim];
            let row = &mut data[i * dim..(i + 1) * dim];
            for (r, &cv) in row.iter_mut().zip(c) {
                *r = cv + noise * sample_gaussian(&mut rng);
            }
        }
        FeatureStore { dim, data }
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Borrow one node's feature row.
    #[inline]
    pub fn row(&self, v: NodeId) -> &[f32] {
        let v = v as usize;
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Mutably borrow one node's feature row.
    #[inline]
    pub fn row_mut(&mut self, v: NodeId) -> &mut [f32] {
        let v = v as usize;
        &mut self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Gather rows for `nodes` into a fresh contiguous buffer — the
    /// operation the cache engine and feature RPCs perform per mini-batch.
    pub fn gather(&self, nodes: &[NodeId]) -> Vec<f32> {
        let mut out = Vec::with_capacity(nodes.len() * self.dim);
        for &v in nodes {
            out.extend_from_slice(self.row(v));
        }
        out
    }

    /// Bytes per node feature row — the unit of cache-slot and wire-transfer
    /// accounting throughout the workspace.
    #[inline]
    pub fn bytes_per_node(&self) -> usize {
        self.dim * std::mem::size_of::<f32>()
    }

    /// Total in-memory size of the store in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// The raw row-major buffer.
    pub fn raw(&self) -> &[f32] {
        &self.data
    }
}

/// Standard normal via Box–Muller; avoids pulling a distributions crate.
fn sample_gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let f = FeatureStore::zeros(10, 4);
        assert_eq!(f.num_nodes(), 10);
        assert_eq!(f.dim(), 4);
        assert!(f.row(3).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn row_mut_roundtrip() {
        let mut f = FeatureStore::zeros(3, 2);
        f.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(f.row(1), &[1.0, 2.0]);
        assert_eq!(f.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn gather_concatenates_rows() {
        let mut f = FeatureStore::zeros(4, 2);
        for v in 0..4u32 {
            f.row_mut(v).copy_from_slice(&[v as f32, v as f32 * 10.0]);
        }
        let g = f.gather(&[3, 1]);
        assert_eq!(g, vec![3.0, 30.0, 1.0, 10.0]);
    }

    #[test]
    fn class_correlated_separates_classes() {
        let labels: Vec<u16> = (0..200).map(|i| (i % 2) as u16).collect();
        let f = FeatureStore::class_correlated(&labels, 2, 16, 0.1, 42);
        // Mean intra-class distance should be far below inter-class.
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>().sqrt()
        };
        let intra = dist(f.row(0), f.row(2));
        let inter = dist(f.row(0), f.row(1));
        assert!(
            inter > intra,
            "inter-class distance {} should exceed intra {}",
            inter,
            intra
        );
    }

    #[test]
    fn bytes_accounting() {
        let f = FeatureStore::zeros(5, 100);
        assert_eq!(f.bytes_per_node(), 400);
        assert_eq!(f.storage_bytes(), 2000);
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_ragged() {
        FeatureStore::from_raw(3, vec![0.0; 10]);
    }
}
