//! Closing the §3.4 loop: a *measured* [`StageProfile`].
//!
//! The paper's resource allocator is profiling-based — `min max{T1/c1,
//! T2/c2, T_net, T3/c3, D_I/b_I, f(c4), D_II/b_II, T_gpu}` consumes
//! per-stage measurements taken from a short profiling run (§3.4). Until
//! now the repo's allocator only ever saw the hand-coded
//! [`StageProfile::paper_example`]; this module runs the *real* pipeline
//! stages on a synthetic dataset, times each with wall clocks, and fits
//! the cache stage's non-linear scaling law `f(c) = a/c + d` from timed
//! replays at several shard/core counts — so `figures --profile` can feed
//! an actually-measured profile into the same brute-force solver.
//!
//! Every stage is wrapped in [`bgl_obs`] spans, so a profiling run with an
//! enabled registry also yields a chrome-trace timeline of the pipeline.

use crate::experiments::{DatasetId, ExperimentCtx};
use crate::measure::{make_ordering, make_partitioner};
use crate::systems::SystemKind;
use bgl_cache::{CacheStats, PolicyKind, QueueShardedCache, ShardedCache};
use bgl_exec::StageProfile;
use bgl_graph::{InducedSubgraph, NodeId};
use bgl_sim::as_secs;
use bgl_sim::network::NetworkModel;
use bgl_store::StoreCluster;
use std::hint::black_box;
use std::time::Instant;

/// One timed cache replay: `seconds_per_batch` at a given shard count.
#[derive(Clone, Copy, Debug)]
pub struct CacheScalingSample {
    pub cores: usize,
    pub seconds_per_batch: f64,
}

/// A profile measured from the real data path, plus the raw cache-scaling
/// samples the `cache_a`/`cache_d` fit was derived from.
#[derive(Clone, Debug)]
pub struct MeasuredProfile {
    pub dataset: &'static str,
    pub num_batches: usize,
    pub batch_size: usize,
    /// The fitted per-stage quantities, directly consumable by
    /// [`bgl_exec::allocator::solve`].
    pub profile: StageProfile,
    /// The timed cache replays behind `cache_a`/`cache_d`.
    pub cache_samples: Vec<CacheScalingSample>,
    /// RMS error of the `a/c + d` fit over the samples (seconds).
    pub fit_residual: f64,
    /// Total wall time of the profiling run.
    pub wall_seconds: f64,
    /// Wire/cache precision D_II was charged at.
    pub feature_precision: bgl_graph::FeaturePrecision,
}

/// Least-squares fit of `T(c) = a/c + d` over `(cores, seconds)` samples:
/// ordinary least squares in `x = 1/c`, with both coefficients clamped to
/// ≥ 0 (a negative parallel fraction or serial floor is measurement
/// noise, not physics). Returns `(a, d, rms_residual)`.
pub fn fit_inverse_cores(samples: &[CacheScalingSample]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    if samples.len() == 1 {
        return (0.0, samples[0].seconds_per_batch.max(0.0), 0.0);
    }
    let n = samples.len() as f64;
    let xs: Vec<f64> = samples.iter().map(|s| 1.0 / s.cores.max(1) as f64).collect();
    let ts: Vec<f64> = samples.iter().map(|s| s.seconds_per_batch).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let mt = ts.iter().sum::<f64>() / n;
    let var_x = xs.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>();
    let cov = xs
        .iter()
        .zip(&ts)
        .map(|(x, t)| (x - mx) * (t - mt))
        .sum::<f64>();
    let mut a = if var_x > 0.0 { cov / var_x } else { 0.0 };
    if a < 0.0 {
        a = 0.0;
    }
    let d = (mt - a * mx).max(0.0);
    let residual = (xs
        .iter()
        .zip(&ts)
        .map(|(x, t)| {
            let e = a * x + d - t;
            e * e
        })
        .sum::<f64>()
        / n)
        .sqrt();
    (a, d, residual)
}

impl ExperimentCtx {
    /// Run the real pipeline stages on `id` and measure a [`StageProfile`]
    /// with wall clocks. `cores` lists the shard counts to time the cache
    /// stage at (the `f(c4) = a/c + d` fit needs ≥ 2 distinct counts).
    ///
    /// Stage mapping (Fig. 10):
    /// * `t1` — distributed `sample_batch` across the store cluster (the
    ///   servers' sampling work, including the per-owner fan-out);
    /// * `t2` — inducing the batch subgraph on the input frontier;
    /// * `t3` — gathering the frontier's feature rows (the worker-side
    ///   format-conversion stand-in: same memory-bound row movement);
    /// * `t_net` / `d_i` / `d_ii` — from measured wire/structure/miss
    ///   bytes, charged at the saturated-NIC rate `measure.rs` uses;
    /// * `cache_a`/`cache_d` — fitted from timed [`QueueShardedCache`]
    ///   replays of the measured input streams at each shard count;
    /// * `cache_knee`/`cache_degrade` — the paper's observed knee (≈ 40
    ///   cores, §3.4) and its degrade/parallel-work ratio (4·10⁻⁴ of
    ///   `cache_a` per core past the knee): the knee is a property of a
    ///   96-core NUMA box that a bench-scale run cannot reach, so these
    ///   two stay paper-calibrated while everything else is measured;
    /// * `t_gpu` — measured GraphSAGE FLOPs on the V100 device model.
    pub fn profile_stages(&self, id: DatasetId, cores: &[usize]) -> MeasuredProfile {
        let obs = &self.obs;
        let wall0 = Instant::now();
        let total_span = obs.span("profile.stages");
        let ds = self.dataset(id);
        let sys = SystemKind::Bgl.config();

        // --- Partition + distributed store, mirroring measure_data_path. ---
        let part_span = obs.span("profile.partition");
        let partitioner = make_partitioner(sys.partitioner, self.seed);
        let partition = partitioner.partition(&ds.graph, &ds.split.train, id.partitions());
        part_span.end();
        let mut cluster = StoreCluster::new(
            ds.graph.clone(),
            ds.features.clone(),
            &partition,
            NetworkModel::paper_fabric(),
            self.seed,
        );
        cluster.attach_metrics(obs);

        let ordering = make_ordering(sys.ordering, sys.po_sequences, self.batch_size, self.seed);
        let seed_batches =
            ordering.epoch_batches(&ds.graph, &ds.split.train, self.batch_size, 0);

        let dim = ds.features.dim();
        // Missed-feature bytes at the configured wire precision: f16 rows
        // cost half of f32, which is exactly what halves D_II.
        let bytes_per_node = (dim * self.feature_precision.bytes_per_scalar()) as f64;
        let hidden = 128usize;
        let mut dims = vec![dim];
        dims.extend(std::iter::repeat_n(hidden, self.fanouts.len().saturating_sub(1)));
        dims.push(ds.num_classes);

        // --- Timed pass over the mini-batch stream. ---
        let mut t1_total = 0.0f64;
        let mut t2_total = 0.0f64;
        let mut t3_total = 0.0f64;
        let mut flops_total = 0.0f64;
        let mut nodes_total = 0usize;
        let mut struct_total = 0usize;
        let mut streams: Vec<Vec<NodeId>> = Vec::new();
        for seeds in seed_batches.iter().take(self.num_batches) {
            let _batch_span = obs.span("profile.batch");
            let mut by_owner: std::collections::BTreeMap<usize, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for &v in seeds.iter() {
                let home = cluster.owner_of(v).expect("seed inside partition map");
                by_owner.entry(home).or_default().push(v);
            }

            let span1 = obs.span("profile.sample");
            let s1 = Instant::now();
            let mut input_nodes: Vec<NodeId> = Vec::new();
            let mut seen: std::collections::HashSet<NodeId> =
                std::collections::HashSet::new();
            for (home, group) in by_owner {
                let (mb, _timing) = cluster
                    .sample_batch(&self.fanouts, &group, home)
                    .expect("no failure injection while profiling");
                for &v in &mb.blocks[0].src_nodes {
                    if seen.insert(v) {
                        input_nodes.push(v);
                    }
                }
                nodes_total += mb.blocks.iter().map(|b| b.num_dst()).sum::<usize>();
                struct_total += mb.structure_bytes();
                flops_total +=
                    bgl_gnn::flops::batch_flops(bgl_gnn::ModelKind::GraphSage, &mb, &dims);
            }
            t1_total += s1.elapsed().as_secs_f64();
            span1.end();

            let span2 = obs.span("profile.induce");
            let s2 = Instant::now();
            let sub = InducedSubgraph::induce(&ds.graph, &input_nodes);
            t2_total += s2.elapsed().as_secs_f64();
            black_box(sub.num_nodes());
            span2.end();

            let span3 = obs.span("profile.gather");
            let s3 = Instant::now();
            let rows = ds.features.gather(&input_nodes);
            t3_total += s3.elapsed().as_secs_f64();
            black_box(rows.len());
            span3.end();

            streams.push(input_nodes);
        }
        let n = streams.len().max(1) as f64;
        let avg_remote_bytes = cluster.ledger.remote.bytes as f64 / n;

        // --- Cache-stage scaling: timed replays at each shard count. ---
        let warmup = streams.len() / 3;
        let mut cache_samples = Vec::with_capacity(cores.len());
        // Fallback D_II (cacheless): every frontier node misses.
        let mut d_ii = streams
            .iter()
            .skip(warmup)
            .map(|s| s.len() as f64 * bytes_per_node)
            .sum::<f64>()
            / (streams.len() - warmup).max(1) as f64;
        for &c in cores {
            let c = c.max(1);
            let cache_span = if obs.is_enabled() {
                obs.span_named(format!("profile.cache.c{}", c))
            } else {
                obs.span("profile.cache")
            };
            // 10% aggregate capacity split across shards, 1-wide rows: the
            // replay times the cache *machinery* (dedup, shard fan-out,
            // queue round-trips, admission), not feature memcpy.
            let per_shard = (ds.graph.num_nodes() / 10 / c).max(1);
            let cache = QueueShardedCache::new(c, 1, per_shard, PolicyKind::Fifo);
            cache.attach_metrics(obs);
            let mut src = |ids: &[NodeId]| vec![0.0f32; ids.len()];
            let mut timed = 0.0f64;
            let mut timed_batches = 0u64;
            let mut at_warmup = CacheStats::default();
            for (i, nodes) in streams.iter().enumerate() {
                if i == warmup {
                    at_warmup = cache.stats();
                }
                let t = Instant::now();
                let out = cache.fetch_batch(nodes, &mut src);
                let dt = t.elapsed().as_secs_f64();
                black_box(out.len());
                if i >= warmup {
                    timed += dt;
                    timed_batches += 1;
                }
            }
            let end = cache.shutdown();
            if c == 1 && timed_batches > 0 {
                // Steady-state missed-feature bytes per batch, from the
                // post-warmup unique-miss count at real feature width.
                let tail = end.delta_since(&at_warmup);
                d_ii = tail.misses as f64 * bytes_per_node / timed_batches as f64;
            }
            cache_samples.push(CacheScalingSample {
                cores: c,
                seconds_per_batch: timed / timed_batches.max(1) as f64,
            });
            cache_span.end();
        }
        let (cache_a, cache_d, fit_residual) = fit_inverse_cores(&cache_samples);

        // --- Assemble the profile. ---
        let avg_nodes = nodes_total as f64 / n;
        let activation_bytes = (avg_nodes * 128.0 * 4.0 * 3.0) as usize;
        let t_gpu = as_secs(self.machine.gpu.kernel_time(
            flops_total / n * sys.cost.gpu_factor,
            activation_bytes,
        ));
        let profile = StageProfile {
            t1: t1_total / n,
            t2: t2_total / n,
            // Saturated-NIC serialization of sampling traffic + missed
            // features (same rate measure.rs charges the shared stage).
            t_net: avg_remote_bytes / 11.0e9 + d_ii / 11.0e9,
            t3: t3_total / n,
            d_i: struct_total as f64 / n,
            cache_a,
            cache_d,
            cache_knee: 40,
            cache_degrade: cache_a * 4e-4,
            d_ii,
            t_gpu,
        };
        total_span.end();
        MeasuredProfile {
            dataset: id.name(),
            num_batches: streams.len(),
            batch_size: self.batch_size,
            profile,
            cache_samples,
            fit_residual,
            wall_seconds: wall0.elapsed().as_secs_f64(),
            feature_precision: self.feature_precision,
        }
    }
}

impl MeasuredProfile {
    /// Serialize for `results/BENCH_profile.json` — rendered through
    /// [`bgl_obs::json`] so the artifact is identical under every build of
    /// the workspace.
    pub fn to_json(&self) -> String {
        use bgl_obs::json::Json;
        let p = &self.profile;
        let samples = self
            .cache_samples
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("cores".to_string(), Json::U64(s.cores as u64)),
                    (
                        "seconds_per_batch".to_string(),
                        Json::F64(s.seconds_per_batch),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("dataset".to_string(), Json::Str(self.dataset.to_string())),
            ("num_batches".to_string(), Json::U64(self.num_batches as u64)),
            ("batch_size".to_string(), Json::U64(self.batch_size as u64)),
            ("wall_seconds".to_string(), Json::F64(self.wall_seconds)),
            ("fit_residual".to_string(), Json::F64(self.fit_residual)),
            (
                "feature_precision".to_string(),
                Json::Str(
                    match self.feature_precision {
                        bgl_graph::FeaturePrecision::F32 => "f32",
                        bgl_graph::FeaturePrecision::F16 => "f16",
                    }
                    .to_string(),
                ),
            ),
            ("cache_samples".to_string(), Json::Arr(samples)),
            (
                "profile".to_string(),
                Json::Obj(vec![
                    ("t1".to_string(), Json::F64(p.t1)),
                    ("t2".to_string(), Json::F64(p.t2)),
                    ("t_net".to_string(), Json::F64(p.t_net)),
                    ("t3".to_string(), Json::F64(p.t3)),
                    ("d_i".to_string(), Json::F64(p.d_i)),
                    ("cache_a".to_string(), Json::F64(p.cache_a)),
                    ("cache_d".to_string(), Json::F64(p.cache_d)),
                    ("cache_knee".to_string(), Json::U64(p.cache_knee as u64)),
                    ("cache_degrade".to_string(), Json::F64(p.cache_degrade)),
                    ("d_ii".to_string(), Json::F64(p.d_ii)),
                    ("t_gpu".to_string(), Json::F64(p.t_gpu)),
                ]),
            ),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(cores: usize, t: f64) -> CacheScalingSample {
        CacheScalingSample { cores, seconds_per_batch: t }
    }

    #[test]
    fn fit_recovers_known_coefficients() {
        let samples: Vec<_> =
            [1usize, 2, 4, 8].iter().map(|&c| s(c, 0.9 / c as f64 + 0.1)).collect();
        let (a, d, r) = fit_inverse_cores(&samples);
        assert!((a - 0.9).abs() < 1e-9, "a = {}", a);
        assert!((d - 0.1).abs() < 1e-9, "d = {}", d);
        assert!(r < 1e-9, "residual = {}", r);
    }

    #[test]
    fn fit_clamps_nonphysical_slopes() {
        // Times *growing* with cores would fit a < 0; clamp to zero.
        let samples = vec![s(1, 0.1), s(2, 0.2), s(4, 0.4)];
        let (a, d, _) = fit_inverse_cores(&samples);
        assert_eq!(a, 0.0);
        assert!(d > 0.0);
    }

    #[test]
    fn fit_degenerate_inputs() {
        assert_eq!(fit_inverse_cores(&[]), (0.0, 0.0, 0.0));
        let (a, d, r) = fit_inverse_cores(&[s(4, 0.25)]);
        assert_eq!((a, r), (0.0, 0.0));
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn f16_precision_halves_profiled_d_ii() {
        let ctx32 = ExperimentCtx::small();
        let mut ctx16 = ExperimentCtx::small();
        ctx16.feature_precision = bgl_graph::FeaturePrecision::F16;
        let p32 = ctx32.profile_stages(DatasetId::Products, &[1]);
        let p16 = ctx16.profile_stages(DatasetId::Products, &[1]);
        // Same seed, same streams, same miss counts — only the per-node
        // byte width differs, so D_II halves exactly.
        assert!(p32.profile.d_ii > 0.0);
        assert_eq!(p16.profile.d_ii * 2.0, p32.profile.d_ii);
        let art = bgl_obs::json::parse(&p16.to_json()).expect("artifact parses");
        assert_eq!(
            art.get("feature_precision").and_then(|j| j.as_str()),
            Some("f16")
        );
    }

    #[test]
    fn profiled_stages_are_positive_and_traced() {
        let mut ctx = ExperimentCtx::small();
        ctx.obs = bgl_obs::Registry::enabled();
        let m = ctx.profile_stages(DatasetId::Products, &[1, 2]);
        let p = &m.profile;
        assert!(m.num_batches > 0);
        assert!(p.t1 > 0.0 && p.t2 > 0.0 && p.t3 > 0.0, "wall times: {:?}", p);
        assert!(p.d_i > 0.0 && p.d_ii >= 0.0 && p.t_gpu > 0.0);
        assert_eq!(p.cache_knee, 40);
        assert!(p.cache_a >= 0.0 && p.cache_d >= 0.0);
        assert_eq!(m.cache_samples.len(), 2);
        assert!(m.cache_samples.iter().all(|s| s.seconds_per_batch > 0.0));
        assert!(m.wall_seconds > 0.0);
        // The run left a trace: spans recorded, exporter emits valid JSON.
        assert!(ctx.obs.span_count() > 0);
        let trace = ctx.obs.chrome_trace_json();
        let parsed = bgl_obs::json::parse(&trace).expect("trace parses");
        assert!(!parsed.as_array().expect("array").is_empty());
        // The artifact serializer emits valid JSON too.
        let art = bgl_obs::json::parse(&m.to_json()).expect("artifact parses");
        assert!(art.get("profile").is_some());
    }
}
