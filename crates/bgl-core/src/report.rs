//! Text-table and JSON rendering for experiment results.

use serde::Serialize;

/// A simple fixed-width text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(headers: &[&str]) -> Self {
        TextTable { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with column auto-sizing.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {:<width$} |", c, width = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Serialize any result set to pretty JSON (for EXPERIMENTS.md appendices).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("results are serde-serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["system", "samples/s"]);
        t.row(&["bgl".into(), "12345".into()]);
        t.row(&["euler".into(), "9".into()]);
        let s = t.render();
        assert!(s.contains("| system |"));
        assert!(s.lines().count() == 4);
        let lens: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "ragged table:\n{}", s);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
