//! One runner per paper table / figure (see DESIGN.md §5 for the index).
//!
//! All runners hang off [`ExperimentCtx`], which caches built datasets and
//! measured data-path traces so the bench harness can sweep models and GPU
//! counts without re-running the expensive phase.

use crate::config::GnnModelKind;
use crate::measure::{measure_data_path, DataPathTrace, MeasuredSystem};
use crate::systems::SystemKind;
use bgl_cache::{FeatureCacheEngine, PolicyKind};
use bgl_graph::{Dataset, DatasetSpec, NodeId};
use bgl_sampler::{NeighborSampler, ProximityAware, RandomShuffle, TrainOrdering};
use bgl_sim::devices::MachineSpec;
use bgl_sim::network::{NetworkModel, RobustnessStats};
use bgl_sim::MILLISECOND;
use bgl_store::{FaultPlan, RetryPolicy, StoreCluster};
use rand::prelude::*;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// The three evaluation datasets (Table 2 stand-ins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum DatasetId {
    Products,
    Papers,
    UserItem,
}

impl DatasetId {
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Products => "ogbn-products-like",
            DatasetId::Papers => "ogbn-papers-like",
            DatasetId::UserItem => "user-item-like",
        }
    }

    /// Partition counts from Tables 3/4: products (2), papers (4),
    /// User-Item (4).
    pub fn partitions(self) -> usize {
        match self {
            DatasetId::Products => 2,
            _ => 4,
        }
    }
}

/// One epoch's sampled input-node stream, shared between cache configs.
type SharedStream = Arc<Vec<Vec<NodeId>>>;

/// Shared experiment context: scales, machine model, caches.
pub struct ExperimentCtx {
    pub products_nodes: usize,
    pub papers_nodes: usize,
    pub useritem_nodes: usize,
    pub batch_size: usize,
    pub fanouts: Vec<usize>,
    pub num_batches: usize,
    /// Batch size and fanouts for the Fig. 5 cache experiments. At paper
    /// scale one batch's input frontier (~400 K nodes) is far smaller than
    /// a 10% cache of a 111 M-node graph; at laptop scale the full fanout
    /// would make the frontier *larger* than the cache and drown the
    /// ordering effect, so the cache experiments use a lighter workload
    /// that restores the paper's frontier ≪ cache ≪ graph regime.
    pub cache_batch_size: usize,
    pub cache_fanouts: Vec<usize>,
    pub machine: MachineSpec,
    pub seed: u64,
    /// Observability sink for the whole experiment run. Disabled by
    /// default (every counter/span degrades to a no-op); `figures
    /// --profile` and the stage profiler swap in an enabled registry.
    pub obs: bgl_obs::Registry,
    datasets: RefCell<HashMap<DatasetId, Dataset>>,
    traces: RefCell<HashMap<(DatasetId, SystemKind), Arc<DataPathTrace>>>,
    /// Sampled input-node streams per (dataset, proximity-ordering?),
    /// shared across cache configurations: the stream depends only on the
    /// ordering, so Fig. 5's 20+ cache points reuse two sampling passes.
    streams: RefCell<HashMap<(DatasetId, bool), SharedStream>>,
    /// Single-machine memory budget for the OOM rule, scaled to the
    /// synthetic datasets (papers/User-Item stand-ins exceed it, products
    /// does not — mirroring §5.1).
    pub machine_memory: usize,
    /// Scalar precision feature rows travel and cache at. [`FeaturePrecision::F16`]
    /// halves D_II wire bytes and resident cache bytes at a bounded
    /// accuracy cost (Table 5 harness pins the delta).
    pub feature_precision: bgl_graph::FeaturePrecision,
}

impl ExperimentCtx {
    /// Bench-scale context (default dataset sizes from DESIGN.md).
    pub fn standard() -> Self {
        ExperimentCtx {
            products_nodes: 1 << 15,
            papers_nodes: 1 << 17,
            useritem_nodes: 1 << 17,
            batch_size: 256,
            fanouts: vec![15, 10, 5],
            num_batches: 15,
            cache_batch_size: 8,
            cache_fanouts: vec![5, 4, 3],
            machine: MachineSpec::paper_testbed(),
            seed: 0xB6,
            obs: bgl_obs::Registry::disabled(),
            datasets: RefCell::new(HashMap::new()),
            traces: RefCell::new(HashMap::new()),
            streams: RefCell::new(HashMap::new()),
            machine_memory: 24 << 20,
            feature_precision: bgl_graph::FeaturePrecision::default(),
        }
    }

    /// Test-scale context (seconds, not minutes).
    pub fn small() -> Self {
        ExperimentCtx {
            products_nodes: 1 << 11,
            papers_nodes: 1 << 12,
            useritem_nodes: 1 << 12,
            batch_size: 64,
            fanouts: vec![5, 5],
            num_batches: 6,
            cache_batch_size: 16,
            cache_fanouts: vec![4, 3],
            machine: MachineSpec::paper_testbed(),
            seed: 0xB6,
            obs: bgl_obs::Registry::disabled(),
            datasets: RefCell::new(HashMap::new()),
            traces: RefCell::new(HashMap::new()),
            streams: RefCell::new(HashMap::new()),
            machine_memory: 3 << 19, // 1.5 MiB
            feature_precision: bgl_graph::FeaturePrecision::default(),
        }
    }

    /// Build (or fetch the cached) dataset.
    pub fn dataset(&self, id: DatasetId) -> Dataset {
        if let Some(ds) = self.datasets.borrow().get(&id) {
            return ds.clone();
        }
        let ds = match id {
            DatasetId::Products => {
                DatasetSpec::products_like().with_nodes(self.products_nodes).build()
            }
            DatasetId::Papers => {
                DatasetSpec::papers_like().with_nodes(self.papers_nodes).build()
            }
            DatasetId::UserItem => {
                DatasetSpec::user_item_like().with_nodes(self.useritem_nodes).build()
            }
        };
        self.datasets.borrow_mut().insert(id, ds.clone());
        ds
    }

    /// Measure (or fetch the cached) data-path trace.
    pub fn trace(&self, id: DatasetId, sys: SystemKind) -> Arc<DataPathTrace> {
        if let Some(t) = self.traces.borrow().get(&(id, sys)) {
            return t.clone();
        }
        let ds = self.dataset(id);
        let t = Arc::new(measure_data_path(
            &ds,
            &sys.config(),
            id.partitions(),
            &self.fanouts,
            self.batch_size,
            self.num_batches,
            self.seed,
            &self.obs,
        ));
        self.traces.borrow_mut().insert((id, sys), t.clone());
        t
    }

    /// Whether `sys` can hold `id` (the OOM rule of §5.1: PyG and PaGraph
    /// only run Ogbn-products).
    pub fn fits(&self, id: DatasetId, sys: SystemKind) -> bool {
        sys.config().fits(self.dataset(id).memory_bytes(), self.machine_memory)
    }
}

// ---------------------------------------------------------------------
// Figs. 11/12/13 — training throughput
// ---------------------------------------------------------------------

/// One throughput measurement (a bar in Figs. 11-13).
#[derive(Clone, Debug, Serialize)]
pub struct ThroughputRow {
    pub dataset: &'static str,
    pub system: &'static str,
    pub model: &'static str,
    pub num_gpus: usize,
    pub samples_per_sec: f64,
    pub gpu_utilization: f64,
    pub hit_ratio: f64,
    pub oom: bool,
}

impl ExperimentCtx {
    /// A single bar of Figs. 11-13.
    pub fn throughput(
        &self,
        id: DatasetId,
        sys: SystemKind,
        model: GnnModelKind,
        num_gpus: usize,
    ) -> ThroughputRow {
        if !self.fits(id, sys) {
            return ThroughputRow {
                dataset: id.name(),
                system: sys.name(),
                model: model.name(),
                num_gpus,
                samples_per_sec: 0.0,
                gpu_utilization: 0.0,
                hit_ratio: 0.0,
                oom: true,
            };
        }
        let trace = self.trace(id, sys);
        let m =
            MeasuredSystem::derive(&trace, &sys.config(), model, num_gpus, &self.machine);
        ThroughputRow {
            dataset: id.name(),
            system: sys.name(),
            model: model.name(),
            num_gpus,
            samples_per_sec: m.report.samples_per_sec,
            gpu_utilization: m.report.gpu_utilization,
            hit_ratio: m.hit_ratio,
            oom: false,
        }
    }

    /// Full figure sweep: systems × models × GPU counts for one dataset.
    pub fn throughput_figure(&self, id: DatasetId) -> Vec<ThroughputRow> {
        let mut rows = Vec::new();
        for sys in SystemKind::all() {
            if sys == SystemKind::BglNoIsolation {
                continue; // Figs. 11-13 plot the full systems only.
            }
            for model in [GnnModelKind::Gcn, GnnModelKind::GraphSage, GnnModelKind::Gat] {
                for gpus in [1usize, 2, 4, 8] {
                    rows.push(self.throughput(id, sys, model, gpus));
                }
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------
// Figs. 2 & 3 — motivation: per-batch breakdown and GPU utilization
// ---------------------------------------------------------------------

/// Per-batch time breakdown (Fig. 2) and utilization (Fig. 3).
#[derive(Clone, Debug, Serialize)]
pub struct BreakdownRow {
    pub system: &'static str,
    pub sampling_ms: f64,
    pub feature_ms: f64,
    pub compute_ms: f64,
    pub total_ms: f64,
    pub preprocessing_fraction: f64,
    pub gpu_utilization: f64,
}

impl ExperimentCtx {
    /// Fig. 2 / Fig. 3 for one baseline on Ogbn-products (GraphSAGE, 1 GPU).
    pub fn breakdown(&self, sys: SystemKind) -> BreakdownRow {
        let trace = self.trace(DatasetId::Products, sys);
        let m = MeasuredSystem::derive(
            &trace,
            &sys.config(),
            GnnModelKind::GraphSage,
            1,
            &self.machine,
        );
        // Stage groups: sampling = stages 1-3 (store + net), feature =
        // stages 4-7 (worker prep, PCIe, cache), compute = stage 8.
        let t = &m.stage_times;
        let sampling = (t[0] + t[1] + t[2]) * 1e3;
        let feature = (t[3] + t[4] + t[5] + t[6]) * 1e3;
        let compute = t[7] * 1e3;
        // In the serial view (what Fig. 2 plots per mini-batch), the batch
        // time is the sum of the three phases.
        let total = sampling + feature + compute;
        BreakdownRow {
            system: sys.name(),
            sampling_ms: sampling,
            feature_ms: feature,
            compute_ms: compute,
            total_ms: total,
            preprocessing_fraction: (sampling + feature) / total,
            gpu_utilization: m.report.gpu_utilization,
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 5 — cache policies
// ---------------------------------------------------------------------

/// One cache configuration's result (a point in Fig. 5a / a bar in 5b).
#[derive(Clone, Debug, Serialize)]
pub struct CacheRow {
    pub policy: &'static str,
    pub proximity_ordering: bool,
    pub cache_frac: f64,
    pub hit_ratio: f64,
    pub overhead_ms_per_batch: f64,
}

impl ExperimentCtx {
    /// Replay an ordering's batch stream through one cache configuration
    /// on the papers-like dataset.
    pub fn cache_experiment(
        &self,
        policy: PolicyKind,
        proximity: bool,
        cache_frac: f64,
    ) -> CacheRow {
        self.cache_experiment_on(DatasetId::Papers, policy, proximity, cache_frac)
    }

    /// Same, on an explicit dataset. Replays epochs until `2 × num_batches`
    /// mini-batches have passed through the cache (multiple epochs is the
    /// realistic regime: a training run revisits every training node
    /// hundreds of times, which is where temporal locality pays).
    pub fn cache_experiment_on(
        &self,
        id: DatasetId,
        policy: PolicyKind,
        proximity: bool,
        cache_frac: f64,
    ) -> CacheRow {
        let ds = self.dataset(id);
        let streams = self.input_streams(id, proximity);
        let cap = ((ds.graph.num_nodes() as f64 * cache_frac).ceil() as usize).max(1);
        let hot = ds.graph.nodes_by_degree_desc();
        let mut engine = FeatureCacheEngine::new(1, 1, cap, 0, policy, &hot);
        engine.attach_metrics(&self.obs);
        if policy == PolicyKind::StaticDegree {
            engine.warm(&bgl_graph::FeatureStore::zeros(ds.graph.num_nodes(), 1));
        }
        let mut src = |ids: &[NodeId]| vec![0.0f32; ids.len()];
        // Warm-up: the first third of the stream (≥1 epoch) fills the
        // cache; hit ratios are measured on the remainder. The paper's
        // ratios are steady-state over long runs (its footnote 4 likewise
        // averages "when the cache is stable after several batches") —
        // counting compulsory first-touch misses would penalize every
        // dynamic policy relative to the pre-warmed static cache.
        let warmup = streams.len() / 3;
        let mut measured = bgl_cache::CacheStats::default();
        for (i, input_nodes) in streams.iter().enumerate() {
            let res = engine.fetch_batch(0, input_nodes, &mut src);
            if i >= warmup {
                measured.merge(&res.stats);
            }
        }
        let stats = &measured;
        CacheRow {
            policy: policy.name(),
            proximity_ordering: proximity,
            cache_frac,
            hit_ratio: stats.hit_ratio(),
            overhead_ms_per_batch: stats.overhead_ms_per_batch(),
        }
    }

    /// Sample (or fetch cached) `2 × num_batches` input-node streams for
    /// one ordering, spanning epochs so temporal reuse is visible.
    pub fn input_streams(&self, id: DatasetId, proximity: bool) -> Arc<Vec<Vec<NodeId>>> {
        if let Some(st) = self.streams.borrow().get(&(id, proximity)) {
            return st.clone();
        }
        let ds = self.dataset(id);
        let ordering: Box<dyn TrainOrdering> = if proximity {
            Box::new(ProximityAware::for_batch(5, self.cache_batch_size, self.seed))
        } else {
            Box::new(RandomShuffle::new(self.seed))
        };
        let sampler =
            NeighborSampler::new(self.cache_fanouts.clone()).with_metrics(&self.obs);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xCACE);
        let target = self.num_batches * 24;
        let mut out: Vec<Vec<NodeId>> = Vec::with_capacity(target);
        let mut epoch = 0usize;
        while out.len() < target {
            let batches = ordering.epoch_batches(
                &ds.graph,
                &ds.split.train,
                self.cache_batch_size,
                epoch,
            );
            if batches.is_empty() {
                break;
            }
            for seeds in &batches {
                let mb = sampler.sample(&ds.graph, seeds, &mut rng);
                out.push(mb.blocks[0].src_nodes.clone());
                if out.len() >= target {
                    break;
                }
            }
            epoch += 1;
        }
        let arc = Arc::new(out);
        self.streams.borrow_mut().insert((id, proximity), arc.clone());
        arc
    }

    /// Fig. 5a: hit ratio vs overhead at 10% cache.
    pub fn fig5a(&self) -> Vec<CacheRow> {
        let mut rows = Vec::new();
        for policy in [PolicyKind::Fifo, PolicyKind::Lru, PolicyKind::Lfu] {
            for po in [false, true] {
                rows.push(self.cache_experiment(policy, po, 0.10));
            }
        }
        rows
    }

    /// Fig. 5b: hit ratios across cache sizes.
    pub fn fig5b(&self) -> Vec<CacheRow> {
        let mut rows = Vec::new();
        for frac in [0.05, 0.10, 0.20, 0.40] {
            rows.push(self.cache_experiment(PolicyKind::StaticDegree, false, frac));
            rows.push(self.cache_experiment(PolicyKind::Fifo, false, frac));
            rows.push(self.cache_experiment(PolicyKind::Fifo, true, frac));
            rows.push(self.cache_experiment(PolicyKind::Lru, true, frac));
            rows.push(self.cache_experiment(PolicyKind::Lfu, true, frac));
        }
        rows
    }
}

// ---------------------------------------------------------------------
// Tables 3 & 4 — partition quality and cost
// ---------------------------------------------------------------------

/// One cell of Table 3 / Table 4.
#[derive(Clone, Debug, Serialize)]
pub struct PartitionRow {
    pub dataset: &'static str,
    pub partitioner: &'static str,
    pub sampling_epoch_seconds: f64,
    pub partition_seconds: f64,
    pub remote_fraction: f64,
    pub train_imbalance: f64,
}

impl ExperimentCtx {
    /// Table 3/4 row: run the BGL data path under a specific partitioner.
    pub fn partition_experiment(
        &self,
        id: DatasetId,
        partitioner: crate::config::PartitionerKind,
    ) -> PartitionRow {
        let ds = self.dataset(id);
        let mut cfg = SystemKind::Bgl.config();
        cfg.partitioner = partitioner;
        cfg.isolation = false;
        // Table 3 uses the lighter sampling workload: with the full fanout
        // a single batch's frontier covers a third of the scaled-down
        // graph, so every partition is touched regardless of partition
        // quality. At paper scale (frontier ≈ 0.4% of the graph) locality
        // is decisive; the light workload restores that ratio.
        let trace = measure_data_path(
            &ds,
            &cfg,
            id.partitions(),
            &self.cache_fanouts,
            self.cache_batch_size,
            self.num_batches * 4,
            self.seed,
            &self.obs,
        );
        let m = MeasuredSystem::derive(
            &trace,
            &cfg,
            GnnModelKind::GraphSage,
            1,
            &self.machine,
        );
        let train_counts = trace.partition.counts_of(&ds.split.train);
        let total_req: u64 = trace.requests_per_server.iter().sum();
        let remote = trace
            .batches
            .iter()
            .map(|b| b.sample_wire)
            .sum::<u64>();
        let _ = (total_req, remote);
        PartitionRow {
            dataset: id.name(),
            partitioner: partitioner.name(),
            sampling_epoch_seconds: m.sampling_epoch_seconds,
            partition_seconds: trace.partition_wall.as_secs_f64(),
            remote_fraction: 0.0, // filled by the caller from the cluster ledger when needed
            train_imbalance: bgl_partition::metrics::balance_ratio(&train_counts),
        }
    }

    /// Table 3 sweep: Random / GMiner / BGL on every dataset.
    pub fn table3(&self) -> Vec<PartitionRow> {
        let mut rows = Vec::new();
        for id in [DatasetId::Products, DatasetId::Papers, DatasetId::UserItem] {
            for p in [
                crate::config::PartitionerKind::Random,
                crate::config::PartitionerKind::GMiner,
                crate::config::PartitionerKind::Bgl,
            ] {
                rows.push(self.partition_experiment(id, p));
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------
// Fig. 14 — feature retrieving time
// ---------------------------------------------------------------------

/// One line-point of Fig. 14.
#[derive(Clone, Debug, Serialize)]
pub struct FeatureTimeRow {
    pub system: &'static str,
    pub num_gpus: usize,
    pub feature_ms_per_batch: f64,
    pub hit_ratio: f64,
}

impl ExperimentCtx {
    /// Fig. 14: per-batch feature retrieving time on papers-like.
    ///
    /// Hit ratios come from a *real replay* of the ordering's sampled
    /// batch streams through each system's cache configuration; the byte
    /// volumes are then evaluated at the paper's workload scale (batch
    /// 1000, fanout {15,10,5} ⇒ ~400 K input nodes, ~195 MB of features
    /// per batch) so the three cost components — network fetch of misses,
    /// cache-operation overhead, PCIe transfer — compete at the magnitudes
    /// the paper measures. PaGraph cannot hold the graph, so (as in the
    /// paper, §5.3.2) its *static policy* is run inside the BGL substrate.
    pub fn fig14(&self, num_gpus_list: &[usize]) -> Vec<FeatureTimeRow> {
        const PAPER_NODES_PER_BATCH: f64 = 400_000.0;
        const PAPER_DIM: f64 = 128.0;
        let paper_bytes = PAPER_NODES_PER_BATCH * PAPER_DIM * 4.0;
        let nic_bw = 11.0e9;
        let pcie_bw = 12.8e9;
        let ds = self.dataset(DatasetId::Papers);
        let hot = ds.graph.nodes_by_degree_desc();
        let mut rows = Vec::new();
        for (label, proximity, cache) in [
            ("euler", false, None),
            ("dgl", false, None),
            ("pagraph-static", false, Some((PolicyKind::StaticDegree, false, 0.0))),
            ("bgl", true, Some((PolicyKind::Fifo, true, 0.20))),
        ] {
            let streams = self.input_streams(DatasetId::Papers, proximity);
            let net_eff = match label {
                "euler" => 0.05,
                "dgl" => 0.15,
                _ => 1.0,
            };
            for &g in num_gpus_list {
                let (hit, policy) = match cache {
                    None => (0.0, None),
                    Some((policy, sharded, cpu_frac)) => {
                        let shards = if sharded { g } else { 1 };
                        let gpu_cap = (ds.graph.num_nodes() / 10).max(1);
                        let cpu_cap =
                            (ds.graph.num_nodes() as f64 * cpu_frac) as usize;
                        let mut engine = FeatureCacheEngine::new(
                            shards, 1, gpu_cap, cpu_cap, policy, &hot,
                        );
                        if policy == PolicyKind::StaticDegree {
                            engine.warm(&bgl_graph::FeatureStore::zeros(
                                ds.graph.num_nodes(),
                                1,
                            ));
                        }
                        let mut src = |ids: &[NodeId]| vec![0.0f32; ids.len()];
                        let warmup = streams.len() / 3;
                        let mut measured = bgl_cache::CacheStats::default();
                        for (i, input) in streams.iter().enumerate() {
                            let res = engine.fetch_batch(i % shards, input, &mut src);
                            if i >= warmup {
                                measured.merge(&res.stats);
                            }
                        }
                        (measured.hit_ratio(), Some(policy))
                    }
                };
                let miss_bytes = (1.0 - hit) * paper_bytes;
                let net_ms = miss_bytes / nic_bw / net_eff * 1e3;
                let pcie_ms = miss_bytes / pcie_bw * 1e3;
                let overhead_ms = match policy {
                    Some(p) => {
                        let model = bgl_cache::cost::CacheCostModel::for_policy(p);
                        let lookups = PAPER_NODES_PER_BATCH as u64;
                        let hits = (PAPER_NODES_PER_BATCH * hit) as u64;
                        let inserts = lookups - hits;
                        model.batch_cost_ns(lookups, hits, inserts) as f64 / 1e6
                    }
                    None => 0.0,
                };
                rows.push(FeatureTimeRow {
                    system: label,
                    num_gpus: g,
                    feature_ms_per_batch: net_ms + pcie_ms + overhead_ms,
                    hit_ratio: hit,
                });
            }
        }
        rows
    }

    /// Fig. 15: resource isolation ablation (GraphSAGE, 4 GPUs).
    pub fn fig15(&self, id: DatasetId) -> Vec<ThroughputRow> {
        [
            SystemKind::Euler,
            SystemKind::Dgl,
            SystemKind::BglNoIsolation,
            SystemKind::Bgl,
        ]
        .iter()
        .map(|&sys| self.throughput(id, sys, GnnModelKind::GraphSage, 4))
        .collect()
    }
}

// ---------------------------------------------------------------------
// Recovery under faults — the robustness experiment
// ---------------------------------------------------------------------

/// Outcome of one epoch of the data path under an injected mid-epoch
/// primary crash (plus background request drops).
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryRow {
    pub dataset: &'static str,
    pub replication: usize,
    pub batches_total: usize,
    pub batches_completed: usize,
    pub batches_failed: usize,
    pub epoch_completed: bool,
    /// Full reliability counters from the cluster.
    pub robustness: RobustnessStats,
    /// Simulated time spent in retry backoff, in milliseconds.
    pub backoff_ms: f64,
    /// Simulated breaker-outage (open -> closed) span, in milliseconds.
    pub recovery_ms: f64,
}

impl ExperimentCtx {
    /// Run one epoch of distributed sampling + feature fetch while a
    /// seeded [`FaultPlan`] kills server 0 mid-epoch (long enough to cover
    /// the rest of the epoch) and drops 1% of requests in flight. With
    /// `replication >= 2` the epoch must complete via replica failover;
    /// with `replication == 1` the same plan visibly fails batches —
    /// that contrast is the experiment.
    pub fn recovery_experiment(&self, id: DatasetId, replication: usize) -> RecoveryRow {
        use bgl_partition::Partitioner;
        let ds = self.dataset(id);
        let k = id.partitions();
        let partition =
            bgl_partition::RoundRobinPartitioner.partition(&ds.graph, &ds.split.train, k);
        // Crash the first server ten requests in, for far longer than the
        // epoch's simulated span: recovery must come from failover, not
        // from the fault conveniently expiring.
        let plan = FaultPlan::new(self.seed).crash(0, 10, 500 * MILLISECOND).drops(0.01);
        let mut cluster = StoreCluster::new(
            ds.graph.clone(),
            ds.features.clone(),
            &partition,
            NetworkModel::paper_fabric(),
            self.seed,
        )
        .with_replication(replication)
        .with_retry_policy(RetryPolicy::default())
        .with_fault_plan(plan);
        let ordering = RandomShuffle::new(self.seed);
        let batches =
            ordering.epoch_batches(&ds.graph, &ds.split.train, self.batch_size, 0);
        let w = cluster.worker_location();
        let mut completed = 0usize;
        let mut failed = 0usize;
        let mut total = 0usize;
        for seeds in batches.iter().take(self.num_batches) {
            total += 1;
            let home = cluster.owner_of(seeds[0]).unwrap_or(0);
            let ok = match cluster.sample_batch(&self.fanouts, seeds, home) {
                Ok((mb, _)) => cluster.fetch_features(mb.input_nodes(), w).is_ok(),
                Err(_) => false,
            };
            if ok {
                completed += 1;
            } else {
                failed += 1;
            }
        }
        RecoveryRow {
            dataset: id.name(),
            replication: cluster.replication(),
            batches_total: total,
            batches_completed: completed,
            batches_failed: failed,
            epoch_completed: failed == 0,
            robustness: cluster.robustness,
            backoff_ms: cluster.robustness.backoff_time as f64 / 1e6,
            recovery_ms: cluster.robustness.recovery_time as f64 / 1e6,
        }
    }

    /// The recovery figure: the same fault plan against replication 1
    /// (fails visibly) and replication 2 (survives), per dataset.
    pub fn recovery_figure(&self, id: DatasetId) -> Vec<RecoveryRow> {
        vec![self.recovery_experiment(id, 1), self.recovery_experiment(id, 2)]
    }
}

// ---------------------------------------------------------------------
// Table 5 & Fig. 16 — accuracy / convergence (real training)
// ---------------------------------------------------------------------

/// One accuracy cell (Table 5) or convergence curve (Fig. 16).
#[derive(Clone, Debug, Serialize)]
pub struct AccuracyRow {
    pub dataset: &'static str,
    pub model: &'static str,
    pub ordering: &'static str,
    pub final_test_acc: f64,
    pub best_test_acc: f64,
    pub curve: Vec<f64>,
}

impl ExperimentCtx {
    /// Train for real (CPU tensor math) under both orderings.
    pub fn accuracy_experiment(
        &self,
        id: DatasetId,
        model: GnnModelKind,
        epochs: usize,
        hidden: usize,
    ) -> Vec<AccuracyRow> {
        let mut ds = self.dataset(id);
        // Table 5 pins the accuracy cost of the f16 feature path: train on
        // exactly the rows the store would serve, i.e. features squeezed
        // through the f16 wire/cache representation.
        if self.feature_precision == bgl_graph::FeaturePrecision::F16 {
            let quantized: Vec<f32> = ds
                .features
                .raw()
                .iter()
                .map(|&x| bgl_graph::half::quantize_f16(x))
                .collect();
            ds.features =
                std::sync::Arc::new(bgl_graph::FeatureStore::from_raw(ds.features.dim(), quantized));
        }
        let layers = self.fanouts.len();
        let cfg = bgl_gnn::TrainConfig {
            model: model.to_gnn(),
            hidden,
            num_layers: layers,
            fanouts: self.fanouts.clone(),
            batch_size: self.batch_size,
            epochs,
            lr: 3e-3,
            seed: self.seed,
        };
        let trainer = bgl_gnn::Trainer::new(&ds, cfg);
        let mut rows = Vec::new();
        for (name, ordering) in [
            (
                "random-shuffle (DGL)",
                Box::new(RandomShuffle::new(self.seed)) as Box<dyn TrainOrdering>,
            ),
            (
                "proximity-aware (BGL)",
                Box::new(ProximityAware::for_batch(5, self.batch_size, self.seed)),
            ),
        ] {
            let hist = trainer.run(ordering.as_ref());
            rows.push(AccuracyRow {
                dataset: id.name(),
                model: model.name(),
                ordering: name,
                final_test_acc: hist.final_test_acc(),
                best_test_acc: hist.best_test_acc(),
                curve: hist.epochs.iter().map(|e| e.test_acc).collect(),
            });
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_orders_systems() {
        let ctx = ExperimentCtx::small();
        let bgl = ctx.throughput(
            DatasetId::Products,
            SystemKind::Bgl,
            GnnModelKind::GraphSage,
            2,
        );
        let euler = ctx.throughput(
            DatasetId::Products,
            SystemKind::Euler,
            GnnModelKind::GraphSage,
            2,
        );
        assert!(!bgl.oom && !euler.oom);
        assert!(
            bgl.samples_per_sec > 3.0 * euler.samples_per_sec,
            "bgl {:.0} vs euler {:.0}",
            bgl.samples_per_sec,
            euler.samples_per_sec
        );
    }

    #[test]
    fn oom_rule_matches_paper() {
        let ctx = ExperimentCtx::small();
        assert!(ctx.fits(DatasetId::Products, SystemKind::Pyg));
        assert!(!ctx.fits(DatasetId::Papers, SystemKind::Pyg));
        assert!(!ctx.fits(DatasetId::UserItem, SystemKind::PaGraph));
        assert!(ctx.fits(DatasetId::UserItem, SystemKind::Bgl));
        let row = ctx.throughput(
            DatasetId::Papers,
            SystemKind::PaGraph,
            GnnModelKind::Gcn,
            1,
        );
        assert!(row.oom);
        assert_eq!(row.samples_per_sec, 0.0);
    }

    #[test]
    fn breakdown_is_preprocessing_dominated_for_baselines() {
        let ctx = ExperimentCtx::small();
        for sys in [SystemKind::Dgl, SystemKind::Euler] {
            let row = ctx.breakdown(sys);
            assert!(
                row.preprocessing_fraction > 0.6,
                "{}: preprocessing fraction {:.2}",
                row.system,
                row.preprocessing_fraction
            );
            assert!(row.gpu_utilization < 0.4);
        }
    }

    #[test]
    fn cache_experiment_po_beats_random_for_fifo() {
        // Papers-like at a size where the community structure is real
        // (the small context's 4K-node variant has too few communities for
        // ordering to matter either way).
        // The epoch must not fit inside the cache window, or ordering
        // cannot matter: 2^15 nodes / 5% cache gives epoch ≈ 2× window.
        let mut ctx = ExperimentCtx::small();
        ctx.papers_nodes = 1 << 15;
        let plain = ctx.cache_experiment(PolicyKind::Fifo, false, 0.05);
        let po = ctx.cache_experiment(PolicyKind::Fifo, true, 0.05);
        assert!(
            po.hit_ratio > plain.hit_ratio,
            "po {:.3} !> plain {:.3}",
            po.hit_ratio,
            plain.hit_ratio
        );
    }

    #[test]
    fn sequence_ablation_tradeoff_shape() {
        // More sequences -> lower shuffling error (better mixing).
        let mut ctx = ExperimentCtx::small();
        ctx.papers_nodes = 1 << 14;
        let rows = ctx.ablate_sequences(&[1, 8]);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].shuffling_error < rows[0].shuffling_error,
            "8 sequences ({:.4}) should mix better than 1 ({:.4})",
            rows[1].shuffling_error,
            rows[0].shuffling_error
        );
        assert!(rows.iter().all(|r| r.fifo_hit_ratio >= 0.0));
    }

    #[test]
    fn cache_level_ablation_two_level_wins() {
        let ctx = ExperimentCtx::small();
        let rows = ctx.ablate_cache_levels();
        let gpu_only = rows.iter().find(|r| r.levels == "gpu-only").unwrap();
        let two = rows.iter().find(|r| r.levels == "gpu+cpu").unwrap();
        assert!(
            two.hit_ratio > gpu_only.hit_ratio,
            "two-level {:.3} should beat gpu-only {:.3}",
            two.hit_ratio,
            gpu_only.hit_ratio
        );
        assert!(two.cpu_hits_fraction > 0.0);
    }

    #[test]
    fn jhop_ablation_runs() {
        let ctx = ExperimentCtx::small();
        let rows = ctx.ablate_jhop(&[1, 2]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.edge_cut));
            assert!((0.0..=1.0).contains(&r.khop_locality));
        }
    }

    #[test]
    fn recovery_epoch_survives_primary_crash_with_replication() {
        let ctx = ExperimentCtx::small();
        let rows = ctx.recovery_figure(DatasetId::Products);
        let (unreplicated, replicated) = (&rows[0], &rows[1]);
        // Without replicas the mid-epoch crash visibly fails batches.
        assert!(
            unreplicated.batches_failed > 0,
            "replication 1 should fail batches under a primary crash"
        );
        // With r = 2 the whole epoch completes via failover — zero panics,
        // zero failed batches.
        assert!(replicated.epoch_completed, "{:?}", replicated);
        assert_eq!(replicated.batches_completed, replicated.batches_total);
        assert!(replicated.robustness.failovers > 0);
        assert!(replicated.robustness.any_faults());
        // Same seed, same plan -> identical recovery outcome.
        let again = ctx.recovery_experiment(DatasetId::Products, 2);
        assert_eq!(again.robustness, replicated.robustness);
    }

    #[test]
    fn fig15_shape() {
        let ctx = ExperimentCtx::small();
        let rows = ctx.fig15(DatasetId::Products);
        assert_eq!(rows.len(), 4);
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.system == n)
                .unwrap()
                .samples_per_sec
        };
        assert!(by_name("bgl") >= by_name("bgl-noiso"));
        assert!(by_name("bgl-noiso") > by_name("dgl"));
    }
}

// ---------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------

/// One row of the proximity-ordering sequence-count ablation (§3.2.2).
#[derive(Clone, Debug, Serialize)]
pub struct SequenceAblationRow {
    pub num_sequences: usize,
    /// Mean per-batch TV distance from the global label distribution.
    pub shuffling_error: f64,
    /// FIFO hit ratio at 10% cache under this ordering.
    pub fifo_hit_ratio: f64,
    /// The `sqrt(bM)/n` convergence bound for this configuration.
    pub bound: f64,
}

/// One row of the cache-level ablation (§3.2.3, "Maximizing Cache Size").
#[derive(Clone, Debug, Serialize)]
pub struct CacheLevelRow {
    pub levels: &'static str,
    pub hit_ratio: f64,
    pub cpu_hits_fraction: f64,
}

/// One row of the partitioner j-hop ablation (§3.3.2, paper uses j = 2).
#[derive(Clone, Debug, Serialize)]
pub struct JhopRow {
    pub jhop: usize,
    pub khop_locality: f64,
    pub edge_cut: f64,
}

impl ExperimentCtx {
    /// §3.2.2 ablation: more BFS sequences mix labels better (lower ε) but
    /// dilute temporal locality (lower hit ratio) — the trade-off the
    /// paper's tuner navigates ("use the minimum number of sequences").
    pub fn ablate_sequences(&self, counts: &[usize]) -> Vec<SequenceAblationRow> {
        use bgl_sampler::shuffle_error::{convergence_bound, shuffling_error};
        // ε is measured on products-like with the full training batch size:
        // at 8-node batches over 172 classes every ordering's per-batch
        // label histogram is pure finite-sample noise and ε saturates near
        // 1 regardless of ordering.
        let eps_ds = self.dataset(DatasetId::Products);
        let ds = self.dataset(DatasetId::Papers);
        let mut rows = Vec::new();
        for &s in counts {
            let eps_ordering = ProximityAware::for_batch(s, self.batch_size, self.seed);
            let eps_order = eps_ordering.epoch_order(&eps_ds.graph, &eps_ds.split.train, 0);
            let eps = shuffling_error(
                &eps_order,
                &eps_ds.labels,
                eps_ds.num_classes,
                self.batch_size,
            );
            let ordering = ProximityAware::for_batch(s, self.cache_batch_size, self.seed);
            // Hit ratio with the same sequence count driving the stream.
            let sampler =
                NeighborSampler::new(self.cache_fanouts.clone()).with_metrics(&self.obs);
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xAB1);
            let cap = (ds.graph.num_nodes() / 10).max(1);
            let mut engine =
                FeatureCacheEngine::new(1, 1, cap, 0, PolicyKind::Fifo, &[]);
            let mut src = |ids: &[NodeId]| vec![0.0f32; ids.len()];
            let mut measured = bgl_cache::CacheStats::default();
            let mut processed = 0usize;
            let target = self.num_batches * 12;
            let warmup = target / 3;
            'outer: for epoch in 0..64 {
                for seeds in ordering.epoch_batches(
                    &ds.graph,
                    &ds.split.train,
                    self.cache_batch_size,
                    epoch,
                ) {
                    let mb = sampler.sample(&ds.graph, &seeds, &mut rng);
                    let res = engine.fetch_batch(0, &mb.blocks[0].src_nodes, &mut src);
                    if processed >= warmup {
                        measured.merge(&res.stats);
                    }
                    processed += 1;
                    if processed >= target {
                        break 'outer;
                    }
                }
            }
            rows.push(SequenceAblationRow {
                num_sequences: s,
                shuffling_error: eps,
                fifo_hit_ratio: measured.hit_ratio(),
                bound: convergence_bound(self.batch_size, 1, eps_ds.split.train.len()),
            });
        }
        rows
    }

    /// §3.2.3 ablation: GPU-only vs two-level (GPU + CPU) cache.
    pub fn ablate_cache_levels(&self) -> Vec<CacheLevelRow> {
        let ds = self.dataset(DatasetId::Papers);
        let streams = self.input_streams(DatasetId::Papers, true);
        let gpu_cap = (ds.graph.num_nodes() / 20).max(1); // 5% on GPU
        let cpu_cap = ds.graph.num_nodes() / 5; // +20% on CPU
        let mut rows = Vec::new();
        for (name, cpu) in [("gpu-only", 0usize), ("gpu+cpu", cpu_cap)] {
            let mut engine =
                FeatureCacheEngine::new(1, 1, gpu_cap, cpu, PolicyKind::Fifo, &[]);
            let mut src = |ids: &[NodeId]| vec![0.0f32; ids.len()];
            let warmup = streams.len() / 3;
            let mut measured = bgl_cache::CacheStats::default();
            for (i, input) in streams.iter().enumerate() {
                let res = engine.fetch_batch(0, input, &mut src);
                if i >= warmup {
                    measured.merge(&res.stats);
                }
            }
            rows.push(CacheLevelRow {
                levels: name,
                hit_ratio: measured.hit_ratio(),
                cpu_hits_fraction: if measured.total() > 0 {
                    measured.cpu_hits as f64 / measured.total() as f64
                } else {
                    0.0
                },
            });
        }
        rows
    }

    /// §3.3.2 ablation: hop depth of the multi-hop locality term.
    pub fn ablate_jhop(&self, hops: &[usize]) -> Vec<JhopRow> {
        use bgl_partition::{BglConfig, BglPartitioner, Partitioner};
        let ds = self.dataset(DatasetId::Products);
        let mut rows = Vec::new();
        for &j in hops {
            let p = BglPartitioner::new(BglConfig { jhop: j, ..Default::default() })
                .partition(&ds.graph, &ds.split.train, 4);
            rows.push(JhopRow {
                jhop: j,
                khop_locality: bgl_partition::metrics::khop_locality(
                    &ds.graph,
                    &p,
                    &ds.split.train,
                    2,
                    100,
                    self.seed,
                ),
                edge_cut: bgl_partition::metrics::edge_cut_fraction(&ds.graph, &p),
            });
        }
        rows
    }
}

// ---------------------------------------------------------------------
// Serving — the `figures --serve` arrival-rate sweep (bgl-serve)
// ---------------------------------------------------------------------

/// One point of the open-loop serving sweep: an offered arrival rate
/// against one front-end configuration.
#[derive(Clone, Debug, Serialize)]
pub struct ServeRateRow {
    pub label: String,
    pub rate_hz: f64,
    pub max_batch: usize,
    pub replication: usize,
    pub offered: u64,
    pub accepted: u64,
    pub shed: u64,
    pub completed: u64,
    pub failed: u64,
    pub throughput_rps: f64,
    /// Exact quantiles by reference sort over every completed request's
    /// front-end latency (microseconds).
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
    /// p99 re-read from the `serve.latency_us` log2 histogram. Bucketed
    /// percentiles report the bucket's *upper bound*, so this must never
    /// undercut the exact `p99_us` — the figures panel asserts it.
    pub hist_p99_us: u64,
    /// Mean micro-batch size the driver actually formed at this rate.
    pub mean_batch: f64,
}

impl ExperimentCtx {
    /// Build the online-serving stack over the User-Item dataset (the
    /// paper's recommendation workload): BGL-partitioned 4-server store
    /// cluster, two-level feature cache, and a GraphSAGE model, wrapped
    /// in a [`bgl_serve::ServeEngine`]. Returns the engine plus the
    /// query population (test-split users — nodes the model was not
    /// trained on, as a recommendation front-end would see).
    pub fn serve_stack(
        &self,
        replication: usize,
        plan: Option<FaultPlan>,
    ) -> (bgl_serve::ServeEngine, Vec<NodeId>) {
        let id = DatasetId::UserItem;
        let ds = self.dataset(id);
        let partition = crate::measure::make_partitioner(
            SystemKind::Bgl.config().partitioner,
            self.seed,
        )
        .partition(&ds.graph, &ds.split.train, id.partitions());
        let mut cluster = StoreCluster::new(
            ds.graph.clone(),
            ds.features.clone(),
            &partition,
            NetworkModel::paper_fabric(),
            self.seed,
        )
        .with_replication(replication)
        .with_retry_policy(RetryPolicy::default());
        if let Some(plan) = plan {
            cluster = cluster.with_fault_plan(plan);
        }
        // Small enough that both cache levels see traffic at test scale.
        let cache = FeatureCacheEngine::new(
            1,
            ds.features.dim(),
            256,
            512,
            PolicyKind::Fifo,
            &[],
        );
        let model = bgl_gnn::make_model(
            GnnModelKind::GraphSage.to_gnn(),
            ds.features.dim(),
            16,
            ds.num_classes,
            self.fanouts.len(),
            self.seed,
        );
        let users: Vec<NodeId> = ds.split.test.iter().copied().take(512).collect();
        let engine = bgl_serve::ServeEngine::new(
            cluster,
            cache,
            model,
            self.fanouts.clone(),
            self.seed,
        );
        (engine, users)
    }

    /// One sweep point: a fresh stack and a fresh enabled registry, one
    /// seeded open-loop run at `rate_hz`, then the ledger read back from
    /// both the exact report and the `serve.*` metrics.
    pub fn serve_rate_point(
        &self,
        label: &str,
        cfg: &bgl_serve::ServeConfig,
        replication: usize,
        plan: Option<FaultPlan>,
        rate_hz: f64,
        n: usize,
    ) -> ServeRateRow {
        let (engine, users) = self.serve_stack(replication, plan);
        let reg = bgl_obs::Registry::enabled();
        let mut fe = bgl_serve::ServeFrontend::new(engine, cfg.clone(), &reg);
        fe.start();
        let handle = fe.handle();
        let report = bgl_serve::open_loop(&handle, &users, rate_hz, n, self.seed);
        fe.shutdown();
        ServeRateRow {
            label: label.to_string(),
            rate_hz,
            max_batch: cfg.max_batch,
            replication,
            offered: report.offered,
            accepted: report.accepted,
            shed: report.shed,
            completed: report.completed,
            failed: report.failed(),
            throughput_rps: report.throughput_rps(),
            p50_us: report.percentile_us(0.50),
            p99_us: report.percentile_us(0.99),
            p999_us: report.percentile_us(0.999),
            hist_p99_us: reg
                .histogram("serve.latency_us")
                .snapshot()
                .percentile(0.99),
            mean_batch: reg.histogram("serve.batch_size").snapshot().mean(),
        }
    }

    /// The `figures --serve` sweep: at each offered rate, the default
    /// micro-batching front-end vs the same front-end pinned to
    /// `max_batch = 1`, plus a chaos leg where a seeded [`FaultPlan`]
    /// crashes store server 0 mid-run under `replication = 2`. Batching
    /// should push the saturation knee right; the chaos leg should bend
    /// the latency curve without dropping accepted requests.
    pub fn serve_sweep(&self, rates: &[f64], n: usize) -> Vec<ServeRateRow> {
        let batched = bgl_serve::ServeConfig::default();
        let serial = bgl_serve::ServeConfig { max_batch: 1, ..batched.clone() };
        let mut rows = Vec::new();
        for &rate in rates {
            rows.push(self.serve_rate_point("batched", &batched, 1, None, rate, n));
            rows.push(self.serve_rate_point("serial", &serial, 1, None, rate, n));
            // Crash outlives the run: every request after the kill must be
            // answered by the replica, not by the primary coming back.
            let plan =
                FaultPlan::new(self.seed).crash(0, (n as u64) / 4, 500 * MILLISECOND);
            rows.push(self.serve_rate_point("chaos-r2", &batched, 2, Some(plan), rate, n));
        }
        rows
    }
}
