//! System configuration: every knob that distinguishes the evaluated
//! systems, plus the CPU/framework cost constants that translate measured
//! work (nodes sampled, edges built, bytes moved) into stage times.

use bgl_cache::PolicyKind;
use serde::{Deserialize, Serialize};

/// Which partitioner a system uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionerKind {
    Random,
    MetisLike,
    GMiner,
    Bgl,
}

impl PartitionerKind {
    pub fn name(self) -> &'static str {
        match self {
            PartitionerKind::Random => "random",
            PartitionerKind::MetisLike => "metis",
            PartitionerKind::GMiner => "gminer",
            PartitionerKind::Bgl => "bgl",
        }
    }
}

/// Which training-node ordering a system uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderingKind {
    RandomShuffle,
    ProximityAware,
}

/// GNN model selector (mirrors `bgl_gnn::ModelKind`, re-exported here so
/// experiment configs stay serde-friendly).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GnnModelKind {
    Gcn,
    GraphSage,
    Gat,
}

impl GnnModelKind {
    pub fn name(self) -> &'static str {
        match self {
            GnnModelKind::Gcn => "gcn",
            GnnModelKind::GraphSage => "graphsage",
            GnnModelKind::Gat => "gat",
        }
    }

    pub fn to_gnn(self) -> bgl_gnn::ModelKind {
        match self {
            GnnModelKind::Gcn => bgl_gnn::ModelKind::Gcn,
            GnnModelKind::GraphSage => bgl_gnn::ModelKind::GraphSage,
            GnnModelKind::Gat => bgl_gnn::ModelKind::Gat,
        }
    }
}

/// Feature-cache configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    pub policy: PolicyKind,
    /// GPU cache capacity per GPU, as a fraction of graph nodes.
    pub gpu_frac: f64,
    /// CPU cache capacity as a fraction of graph nodes (0 disables).
    pub cpu_frac: f64,
    /// Whether the multi-GPU shards pool their capacity (BGL's mod-sharded
    /// design). PaGraph replicates the same hot set on every GPU instead,
    /// so its aggregate capacity does not grow with the GPU count.
    pub sharded_across_gpus: bool,
}

/// Framework path-efficiency constants: single-core nanoseconds of CPU
/// work per unit of data-path work. These encode *how efficient each
/// framework's implementation of the same stage is* — the paper's Euler
/// (TensorFlow ops + gRPC) spends far more CPU per sampled edge than BGL's
/// hand-written C++ path. Calibrated so the end-to-end speedup ratios land
/// in the paper's reported ranges (§5.2).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// Stage 1: per sampled node (request processing, hash probes).
    pub sample_ns_per_node: f64,
    /// Stage 2: per sampled edge (subgraph construction + serialization).
    pub build_ns_per_edge: f64,
    /// Stage 4: per sampled edge (format conversion on the worker).
    pub convert_ns_per_edge: f64,
    /// Multiplier on GPU kernel time (1.0 = tuned kernels; Euler's
    /// unoptimized irregular kernels are slower, especially on GAT).
    pub gpu_factor: f64,
    /// Extra GPU multiplier applied to GAT only (Euler "does not optimize
    /// the GPU kernels for irregular graph structures", §5.2).
    pub gat_gpu_factor: f64,
    /// Fraction of raw wire bandwidth the framework's transport actually
    /// achieves (1.0 = saturates the NIC, which only BGL's shared-memory +
    /// zero-copy path does; gRPC/pickle paths land at a few percent).
    pub net_efficiency: f64,
}

/// A complete system description.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SystemConfig {
    pub partitioner: PartitionerKind,
    pub ordering: OrderingKind,
    pub cache: Option<CacheConfig>,
    /// Profiling-based resource isolation (§3.4) vs free contention.
    pub isolation: bool,
    /// Store colocated with the worker on one machine (PyG, PaGraph).
    /// Colocated systems cannot hold graphs beyond one machine's memory.
    pub single_machine: bool,
    pub cost: CpuCostModel,
    /// Number of proximity-aware BFS sequences (ignored for RandomShuffle).
    pub po_sequences: usize,
}

impl SystemConfig {
    /// Whether this system can train a dataset of `memory_bytes` footprint
    /// given a single machine holds `machine_memory` (OOM check that makes
    /// PyG/PaGraph fail on papers/User-Item, §5.1).
    pub fn fits(&self, memory_bytes: usize, machine_memory: usize) -> bool {
        !self.single_machine || memory_bytes <= machine_memory
    }
}
