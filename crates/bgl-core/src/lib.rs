//! # bgl — the BGL system facade and experiment harness
//!
//! Ties the substrates together into the five systems the paper evaluates
//! (§5.1) and the harness that regenerates every table and figure:
//!
//! * [`config`] — system configurations: partitioner, cache, ordering,
//!   isolation, framework efficiency factors;
//! * [`systems`] — presets: **BGL**, **BGL w/o isolation**, **DGL-like**,
//!   **Euler-like**, **PyG-like**, **PaGraph-like**, each expressed as an
//!   ablation of the same substrate (see DESIGN.md for the mapping);
//! * [`measure`] — drives the real data path (partition → distributed
//!   store → sampling → cache) for a batch stream, derives a
//!   [`bgl_exec::StageProfile`], solves or skips isolation, and simulates
//!   end-to-end throughput on the device models;
//! * [`experiments`] — one function per paper table/figure;
//! * [`report`] — text tables and JSON output for EXPERIMENTS.md.
//!
//! ## Quickstart
//!
//! ```no_run
//! use bgl::config::GnnModelKind;
//! use bgl::experiments::ExperimentCtx;
//! use bgl::systems::SystemKind;
//!
//! let ctx = ExperimentCtx::small();
//! let row = ctx.throughput(
//!     bgl::experiments::DatasetId::Products,
//!     SystemKind::Bgl,
//!     GnnModelKind::GraphSage,
//!     4,
//! );
//! println!("BGL @4 GPUs: {:.0} samples/s", row.samples_per_sec);
//! ```

pub mod config;
pub mod experiments;
pub mod measure;
pub mod profiler;
pub mod report;
pub mod systems;

pub use bgl_graph::{FeatureBlock, FeaturePrecision};
pub use config::SystemConfig;
pub use measure::{measure_data_path, DataPathTrace, MeasuredSystem};
pub use profiler::{CacheScalingSample, MeasuredProfile};
pub use systems::SystemKind;
