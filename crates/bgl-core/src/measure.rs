//! Drive the real data path and derive end-to-end performance.
//!
//! Two phases, split so the expensive part is shared:
//!
//! 1. [`measure_data_path`] — run partitioning, stand up the distributed
//!    store, and sample a stream of mini-batches under the system's
//!    training-node ordering, recording per-batch work (nodes sampled,
//!    edges built, structure bytes, simulated sampling wire time) and the
//!    input-node streams. This depends on (dataset, system) only.
//! 2. [`MeasuredSystem::derive`] — for a given model and GPU count, replay
//!    the input-node streams through the system's cache configuration,
//!    convert work into a [`StageProfile`] via the system's CPU cost
//!    constants, solve (or skip) resource isolation, and simulate the
//!    8-stage pipeline on the V100/NIC/PCIe device models.

use crate::config::{GnnModelKind, OrderingKind, PartitionerKind, SystemConfig};
use bgl_cache::{CacheStats, FeatureCacheEngine};
use bgl_exec::allocator::{solve, Capacities, ContentionModel};
use bgl_exec::build::{simulate, SystemReport};
use bgl_exec::StageProfile;
use bgl_graph::{Dataset, NodeId};
use bgl_partition::{
    BglPartitioner, GMinerPartitioner, MetisLikePartitioner, Partition, Partitioner,
    RandomPartitioner,
};
use bgl_sampler::{ProximityAware, RandomShuffle, TrainOrdering};
use bgl_sim::devices::{GpuSpec, LinkSpec, MachineSpec};
use bgl_sim::network::NetworkModel;
use bgl_sim::{as_secs, SimTime};
use bgl_store::StoreCluster;
use std::time::{Duration, Instant};

/// Per-batch data-path record.
#[derive(Clone, Debug)]
pub struct BatchTrace {
    /// Input-frontier node IDs (feature fetch set).
    pub input_nodes: Vec<NodeId>,
    /// Total destination nodes across hops (sampling requests served).
    pub sampled_nodes: usize,
    /// Total sampled edges (subgraph construction work).
    pub sampled_edges: usize,
    /// Encoded subgraph structure bytes (the D_I payload).
    pub structure_bytes: usize,
    /// Simulated wire time of the distributed sampling (includes
    /// per-message latency — used for the Table 3 epoch metric).
    pub sample_wire: SimTime,
    /// Bytes of sampling traffic that crossed servers for this batch
    /// (bandwidth component — used for the pipeline's shared network
    /// stage, where per-message latency is hidden by pipelining).
    pub sample_remote_bytes: u64,
    /// Cross-server sampling requests issued for this batch.
    pub sample_remote_requests: u64,
    /// Per-model forward+backward FLOPs (GCN, SAGE, GAT order).
    pub flops: [f64; 3],
}

/// The shared measurement of one (dataset, system) pair.
pub struct DataPathTrace {
    pub partition_wall: Duration,
    pub partition: Partition,
    pub batches: Vec<BatchTrace>,
    pub requests_per_server: Vec<u64>,
    pub graph_nodes: usize,
    pub feature_dim: usize,
    pub batch_size: usize,
    /// Training nodes per epoch (for per-epoch extrapolation).
    pub train_size: usize,
    /// Degree-ranked nodes (for the static cache).
    pub hot_nodes: Vec<NodeId>,
}

/// Build the partitioner named by the config.
pub fn make_partitioner(kind: PartitionerKind, seed: u64) -> Box<dyn Partitioner> {
    match kind {
        PartitionerKind::Random => Box::new(RandomPartitioner::new(seed)),
        PartitionerKind::MetisLike => Box::new(MetisLikePartitioner::default()),
        PartitionerKind::GMiner => Box::new(GMinerPartitioner::default()),
        PartitionerKind::Bgl => Box::new(BglPartitioner::default()),
    }
}

/// Build the ordering named by the config.
pub fn make_ordering(
    kind: OrderingKind,
    po_sequences: usize,
    batch_size: usize,
    seed: u64,
) -> Box<dyn TrainOrdering> {
    match kind {
        OrderingKind::RandomShuffle => Box::new(RandomShuffle::new(seed)),
        OrderingKind::ProximityAware => {
            Box::new(ProximityAware::for_batch(po_sequences.max(1), batch_size, seed))
        }
    }
}

/// Phase 1: run the real data path for `num_batches` mini-batches.
#[allow(clippy::too_many_arguments)]
pub fn measure_data_path(
    ds: &Dataset,
    sys: &SystemConfig,
    k_partitions: usize,
    fanouts: &[usize],
    batch_size: usize,
    num_batches: usize,
    seed: u64,
    obs: &bgl_obs::Registry,
) -> DataPathTrace {
    // Single-machine systems colocate the store with the worker: one
    // partition, loopback fabric.
    let k = if sys.single_machine { 1 } else { k_partitions.max(1) };
    let t0 = Instant::now();
    let span = obs.span("measure.partition");
    let partitioner = make_partitioner(sys.partitioner, seed);
    let partition = partitioner.partition(&ds.graph, &ds.split.train, k);
    span.end();
    let partition_wall = t0.elapsed();

    let net = if sys.single_machine {
        NetworkModel { local: LinkSpec::loopback(), remote: LinkSpec::loopback() }
    } else {
        NetworkModel::paper_fabric()
    };
    let mut cluster =
        StoreCluster::new(ds.graph.clone(), ds.features.clone(), &partition, net, seed);
    cluster.attach_metrics(obs);

    let ordering = make_ordering(sys.ordering, sys.po_sequences, batch_size, seed);
    let seed_batches = ordering.epoch_batches(&ds.graph, &ds.split.train, batch_size, 0);

    let hidden = 128usize;
    let mut dims = vec![ds.features.dim()];
    dims.extend(std::iter::repeat_n(hidden, fanouts.len() - 1));
    dims.push(ds.num_classes);

    let mut batches = Vec::with_capacity(num_batches);
    let mut remote_before = 0u64;
    for seeds in seed_batches.iter().take(num_batches) {
        let _batch_span = obs.span("measure.batch");
        // Samplers are colocated with the store servers (paper §3.1): each
        // seed's subgraph is sampled by the server owning it, and the
        // per-owner sub-batches proceed in parallel. This is where
        // partition locality pays — a seed whose multi-hop neighborhood
        // stays on its own server samples without touching the network.
        // BTreeMap keeps the per-owner issue order deterministic, so the
        // servers' sampling RNG streams (and thus the measured batches)
        // reproduce run to run.
        let mut by_owner: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for &v in seeds.iter() {
            let home = cluster.owner_of(v).expect("seed inside partition map");
            by_owner.entry(home).or_default().push(v);
        }
        let mut input_nodes: Vec<NodeId> = Vec::new();
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut sampled_nodes = 0usize;
        let mut sampled_edges = 0usize;
        let mut structure_bytes = 0usize;
        let mut sample_wire: SimTime = 0;
        let mut sample_remote_requests = 0u64;
        let mut flops = [0.0f64; 3];
        for (home, group) in by_owner {
            let (mb, timing) = cluster
                .sample_batch(fanouts, &group, home)
                .expect("no failure injection during measurement");
            for &v in &mb.blocks[0].src_nodes {
                if seen.insert(v) {
                    input_nodes.push(v);
                }
            }
            sampled_nodes += mb.blocks.iter().map(|b| b.num_dst()).sum::<usize>();
            sampled_edges += mb.num_edges();
            structure_bytes += mb.structure_bytes();
            sample_wire = sample_wire.max(timing.elapsed);
            sample_remote_requests += timing.remote_requests;
            flops[0] += bgl_gnn::flops::batch_flops(bgl_gnn::ModelKind::Gcn, &mb, &dims);
            flops[1] +=
                bgl_gnn::flops::batch_flops(bgl_gnn::ModelKind::GraphSage, &mb, &dims);
            flops[2] += bgl_gnn::flops::batch_flops(bgl_gnn::ModelKind::Gat, &mb, &dims);
        }
        let sample_remote_bytes = cluster.ledger.remote.bytes - remote_before;
        remote_before = cluster.ledger.remote.bytes;
        batches.push(BatchTrace {
            input_nodes,
            sampled_nodes,
            sampled_edges,
            structure_bytes,
            sample_wire,
            sample_remote_bytes,
            sample_remote_requests,
            flops,
        });
    }
    DataPathTrace {
        partition_wall,
        partition,
        batches,
        requests_per_server: cluster.requests_per_server(),
        graph_nodes: ds.graph.num_nodes(),
        feature_dim: ds.features.dim(),
        batch_size,
        train_size: ds.split.train.len(),
        hot_nodes: ds.graph.nodes_by_degree_desc(),
    }
}

/// The derived end-to-end result for one (system, model, gpu-count).
#[derive(Clone, Debug)]
pub struct MeasuredSystem {
    pub report: SystemReport,
    pub profile: StageProfile,
    pub stage_times: [f64; 8],
    pub cache: CacheStats,
    /// GPU-or-better cache hit ratio (0 when the system has no cache).
    pub hit_ratio: f64,
    /// Per-mini-batch feature retrieving time in ms (Fig. 14): network
    /// fetch of misses + cache overhead + PCIe transfer.
    pub feature_ms_per_batch: f64,
    /// Graph sampling time per epoch in seconds (Table 3): simulated wire
    /// + CPU sampling time, inflated by the sampler load imbalance.
    pub sampling_epoch_seconds: f64,
    /// One-time partition wall time (Table 4).
    pub partition_wall: Duration,
}

impl MeasuredSystem {
    /// Phase 2: derive the end-to-end numbers for `model` on `num_gpus`.
    pub fn derive(
        trace: &DataPathTrace,
        sys: &SystemConfig,
        model: GnnModelKind,
        num_gpus: usize,
        machine: &MachineSpec,
    ) -> MeasuredSystem {
        let num_gpus = num_gpus.max(1);
        let dim = trace.feature_dim;
        let bytes_per_node = dim * 4;

        // --- Cache replay over the recorded input-node streams. ---
        let mut cache_stats = CacheStats::default();
        let mut miss_bytes_tail = 0u64;
        let mut tail_batches = 0u64;
        let warmup = trace.batches.len() / 3;
        if let Some(cc) = &sys.cache {
            let gpu_cap =
                ((trace.graph_nodes as f64 * cc.gpu_frac).ceil() as usize).max(1);
            let cpu_cap = (trace.graph_nodes as f64 * cc.cpu_frac).ceil() as usize;
            let shards = if cc.sharded_across_gpus { num_gpus } else { 1 };
            let mut engine = FeatureCacheEngine::new(
                shards,
                1, // 1-wide rows: we only need hit/miss accounting here
                gpu_cap,
                cpu_cap,
                cc.policy,
                &trace.hot_nodes,
            );
            let mut src = |ids: &[NodeId]| vec![0.0f32; ids.len()];
            for (i, b) in trace.batches.iter().enumerate() {
                let res = engine.fetch_batch(i % shards, &b.input_nodes, &mut src);
                if i >= warmup {
                    miss_bytes_tail += res.stats.misses * bytes_per_node as u64;
                    tail_batches += 1;
                }
            }
            cache_stats = *engine.stats();
        } else {
            for (i, b) in trace.batches.iter().enumerate() {
                if i >= warmup {
                    miss_bytes_tail += (b.input_nodes.len() * bytes_per_node) as u64;
                    tail_batches += 1;
                }
            }
            cache_stats.misses = trace
                .batches
                .iter()
                .map(|b| b.input_nodes.len() as u64)
                .sum();
            cache_stats.batches = trace.batches.len() as u64;
        }
        let d_ii = miss_bytes_tail as f64 / tail_batches.max(1) as f64;
        let hit_ratio = cache_stats.hit_ratio();

        // --- Per-batch averages of the measured work. ---
        let n = trace.batches.len().max(1) as f64;
        let avg_nodes =
            trace.batches.iter().map(|b| b.sampled_nodes).sum::<usize>() as f64 / n;
        let avg_edges =
            trace.batches.iter().map(|b| b.sampled_edges).sum::<usize>() as f64 / n;
        let avg_struct =
            trace.batches.iter().map(|b| b.structure_bytes).sum::<usize>() as f64 / n;
        let avg_sample_wire = trace
            .batches
            .iter()
            .map(|b| as_secs(b.sample_wire))
            .sum::<f64>()
            / n;
        let avg_sample_remote_bytes = trace
            .batches
            .iter()
            .map(|b| b.sample_remote_bytes as f64)
            .sum::<f64>()
            / n;
        let model_idx = match model {
            GnnModelKind::Gcn => 0,
            GnnModelKind::GraphSage => 1,
            GnnModelKind::Gat => 2,
        };
        let avg_flops =
            trace.batches.iter().map(|b| b.flops[model_idx]).sum::<f64>() / n;

        // --- Stage profile from work × framework cost constants. ---
        let cost = sys.cost;
        let gpu_factor = cost.gpu_factor
            * if model == GnnModelKind::Gat { cost.gat_gpu_factor / cost.gpu_factor.max(1.0) } else { 1.0 };
        // Feature wire time for the misses (workers are never colocated
        // with remote stores; single-machine systems fetch via local mem).
        // The *raw* wire time assumes a saturated link, which only BGL's
        // zero-copy shared-memory transport achieves; other frameworks pay
        // `1/eff − 1` extra in per-worker CPU (gRPC marshalling, pickle),
        // which lands in the replicated worker-CPU stage below.
        let feat_link = if sys.single_machine {
            LinkSpec::loopback()
        } else {
            machine.nic
        };
        let net_eff = cost.net_efficiency.clamp(0.01, 1.0);
        let t_net_features_raw = as_secs(feat_link.transfer_time(d_ii as usize));
        // Per-GPU view of feature fetching (Fig. 14's metric).
        let t_net_features = t_net_features_raw / net_eff;
        // Shared-NIC time per batch, *bandwidth only*: in the pipeline's
        // steady state, per-message latencies are hidden by in-flight
        // batches, so only serialization time gates the shared stage
        // (per-message latency still counts in the Table 3 metric below).
        let wire_bw = |bytes: f64| -> f64 {
            if sys.single_machine {
                bytes / 80.0e9 // loopback memory bandwidth
            } else {
                bytes / 11.0e9 // saturated 100 Gbps NIC
            }
        };
        let t_net_bandwidth = wire_bw(avg_sample_remote_bytes) + wire_bw(d_ii);
        // Framework transport overhead: per-worker CPU time spent to move
        // the batch's bytes (sampling responses + features).
        let transport_cpu =
            (1.0 / net_eff - 1.0) * (t_net_features_raw + avg_sample_wire);
        // Cache overhead folded into the cache stage: a = parallelizable
        // op cost, d = serial remainder (5%).
        let overhead_per_batch_s = if cache_stats.batches > 0 {
            cache_stats.overhead_ns as f64 / cache_stats.batches as f64 / 1e9
        } else {
            0.0
        };
        let gpu = GpuSpec { ..machine.gpu };
        let activation_bytes = (avg_nodes * 128.0 * 4.0 * 3.0) as usize;
        let profile = StageProfile {
            t1: avg_nodes * cost.sample_ns_per_node / 1e9,
            t2: avg_edges * cost.build_ns_per_edge / 1e9,
            t_net: t_net_bandwidth,
            t3: avg_edges * cost.convert_ns_per_edge / 1e9 + transport_cpu,
            d_i: avg_struct,
            cache_a: overhead_per_batch_s * 40.0 * 0.95,
            cache_d: overhead_per_batch_s * 0.05,
            cache_knee: 40,
            cache_degrade: overhead_per_batch_s * 2e-3,
            d_ii,
            t_gpu: as_secs(gpu.kernel_time(avg_flops * gpu_factor, activation_bytes)),
        };

        // --- Isolation vs free contention. ---
        // The store side is `k` separate servers, each with its own CPUs
        // (paper §5.1: 8 or 32 CPU store servers) — store capacity scales
        // with the partition count.
        let caps = Capacities {
            c_gs: machine.store_cores * trace.partition.k.max(1),
            c_wm: machine.worker_cores,
            b_pcie: 12,
            pcie_unit: 12.8e9 / 12.0,
        };
        let stage_times = if sys.isolation {
            solve(&profile, &caps).stage_times
        } else {
            ContentionModel::default().stage_times(&profile, &caps)
        };
        let report = simulate(&stage_times, num_gpus, trace.batch_size, 400, 4);

        // --- Fig. 14: feature retrieving time per batch. ---
        let pcie_s = as_secs(machine.pcie.transfer_time(d_ii as usize));
        let feature_ms_per_batch =
            (t_net_features + overhead_per_batch_s + pcie_s) * 1e3;

        // --- Table 3: sampling time per epoch. ---
        let batches_per_epoch =
            (trace.train_size + trace.batch_size - 1) / trace.batch_size.max(1);
        let imbalance = bgl_partition::metrics::balance_ratio(
            &trace
                .requests_per_server
                .iter()
                .map(|&r| r as usize)
                .collect::<Vec<_>>(),
        );
        let cpu_sampling =
            (profile.t1 + profile.t2) / machine.store_cores.max(1) as f64;
        let avg_remote_reqs = trace
            .batches
            .iter()
            .map(|b| b.sample_remote_requests as f64)
            .sum::<f64>()
            / n;
        // Per-batch sampling time: store-CPU work + cross-server traffic.
        // A remote neighbor request costs wire time *and* serialization /
        // deserialization CPU on both ends (~25 ns/byte, a gRPC-class
        // marshalling rate), plus a fixed per-RPC overhead. The partitioner
        // moves these locality terms and the imbalance factor
        // (training-node balance) — exactly Table 3's levers.
        let remote_cost = avg_sample_remote_bytes / 11.0e9
            + avg_sample_remote_bytes * 25e-9
            + avg_remote_reqs * 100e-6;
        let sampling_epoch_seconds =
            batches_per_epoch as f64 * (cpu_sampling + remote_cost) * imbalance;

        MeasuredSystem {
            report,
            profile,
            stage_times,
            cache: cache_stats,
            hit_ratio,
            feature_ms_per_batch,
            sampling_epoch_seconds,
            partition_wall: trace.partition_wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemKind;
    use bgl_graph::DatasetSpec;

    fn small_ds() -> Dataset {
        DatasetSpec::products_like().with_nodes(1 << 11).build()
    }

    fn trace_for(ds: &Dataset, sys: SystemKind) -> DataPathTrace {
        measure_data_path(ds, &sys.config(), 2, &[5, 5], 64, 6, 9, &bgl_obs::Registry::disabled())
    }

    #[test]
    fn data_path_records_batches() {
        let ds = small_ds();
        let t = trace_for(&ds, SystemKind::Dgl);
        // At most 6 requested; fewer only when the epoch is shorter.
        assert!(!t.batches.is_empty() && t.batches.len() <= 6);
        for b in &t.batches {
            assert!(b.sampled_nodes > 0);
            assert!(b.sampled_edges > 0);
            assert!(!b.input_nodes.is_empty());
            assert!(b.flops.iter().all(|&f| f > 0.0));
        }
    }

    #[test]
    fn bgl_outperforms_dgl_on_throughput() {
        let ds = small_ds();
        let machine = MachineSpec::paper_testbed();
        let t_dgl = trace_for(&ds, SystemKind::Dgl);
        let t_bgl = trace_for(&ds, SystemKind::Bgl);
        let dgl = MeasuredSystem::derive(
            &t_dgl,
            &SystemKind::Dgl.config(),
            GnnModelKind::GraphSage,
            1,
            &machine,
        );
        let bgl = MeasuredSystem::derive(
            &t_bgl,
            &SystemKind::Bgl.config(),
            GnnModelKind::GraphSage,
            1,
            &machine,
        );
        assert!(
            bgl.report.samples_per_sec > 2.0 * dgl.report.samples_per_sec,
            "bgl {:.0} should be well above dgl {:.0}",
            bgl.report.samples_per_sec,
            dgl.report.samples_per_sec
        );
        assert!(bgl.hit_ratio > 0.05, "bgl cache should hit, got {}", bgl.hit_ratio);
        assert_eq!(dgl.hit_ratio, 0.0);
    }

    #[test]
    fn cache_cuts_feature_time() {
        let ds = small_ds();
        let machine = MachineSpec::paper_testbed();
        let t_dgl = trace_for(&ds, SystemKind::Dgl);
        let t_bgl = trace_for(&ds, SystemKind::Bgl);
        let dgl = MeasuredSystem::derive(
            &t_dgl,
            &SystemKind::Dgl.config(),
            GnnModelKind::GraphSage,
            1,
            &machine,
        );
        let bgl = MeasuredSystem::derive(
            &t_bgl,
            &SystemKind::Bgl.config(),
            GnnModelKind::GraphSage,
            1,
            &machine,
        );
        assert!(
            bgl.feature_ms_per_batch < dgl.feature_ms_per_batch,
            "bgl feature time {:.3}ms !< dgl {:.3}ms",
            bgl.feature_ms_per_batch,
            dgl.feature_ms_per_batch
        );
    }

    #[test]
    fn isolation_helps() {
        let ds = small_ds();
        let machine = MachineSpec::paper_testbed();
        let trace = trace_for(&ds, SystemKind::Bgl);
        let with = MeasuredSystem::derive(
            &trace,
            &SystemKind::Bgl.config(),
            GnnModelKind::GraphSage,
            4,
            &machine,
        );
        let without = MeasuredSystem::derive(
            &trace,
            &SystemKind::BglNoIsolation.config(),
            GnnModelKind::GraphSage,
            4,
            &machine,
        );
        assert!(
            with.report.samples_per_sec >= without.report.samples_per_sec,
            "isolation must not hurt: {} vs {}",
            with.report.samples_per_sec,
            without.report.samples_per_sec
        );
    }

    #[test]
    fn more_gpus_grow_bgl_cache_hit_ratio() {
        let ds = small_ds();
        let machine = MachineSpec::paper_testbed();
        let trace = trace_for(&ds, SystemKind::Bgl);
        let cfg = SystemKind::Bgl.config();
        let h1 = MeasuredSystem::derive(&trace, &cfg, GnnModelKind::GraphSage, 1, &machine)
            .hit_ratio;
        let h8 = MeasuredSystem::derive(&trace, &cfg, GnnModelKind::GraphSage, 8, &machine)
            .hit_ratio;
        assert!(
            h8 > h1,
            "aggregate sharded cache must grow with GPUs: {} vs {}",
            h8,
            h1
        );
    }
}
