//! The evaluated systems as substrate ablations.
//!
//! Each baseline's preset encodes exactly the data-path properties the
//! paper attributes its performance to (§5.1-§5.2):
//!
//! | System    | Partition      | Cache            | Ordering | Isolation | Machine |
//! |-----------|----------------|------------------|----------|-----------|---------|
//! | Euler     | Random         | none             | shuffle  | no        | distrib |
//! | DGL       | METIS/Random   | none             | shuffle  | no        | distrib |
//! | PyG       | colocated      | none             | shuffle  | no        | single  |
//! | PaGraph   | per-GPU static | static(degree)   | shuffle  | no        | single  |
//! | BGL-noiso | BGL            | FIFO dyn, 2-lvl  | PO       | no        | distrib |
//! | BGL       | BGL            | FIFO dyn, 2-lvl  | PO       | yes       | distrib |

use crate::config::{
    CacheConfig, CpuCostModel, OrderingKind, PartitionerKind, SystemConfig,
};
use bgl_cache::PolicyKind;
use serde::{Deserialize, Serialize};

/// The systems compared in the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    Euler,
    Dgl,
    Pyg,
    PaGraph,
    BglNoIsolation,
    Bgl,
}

impl SystemKind {
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Euler => "euler",
            SystemKind::Dgl => "dgl",
            SystemKind::Pyg => "pyg",
            SystemKind::PaGraph => "pagraph",
            SystemKind::BglNoIsolation => "bgl-noiso",
            SystemKind::Bgl => "bgl",
        }
    }

    /// All systems, baseline-first.
    pub fn all() -> [SystemKind; 6] {
        [
            SystemKind::Euler,
            SystemKind::Dgl,
            SystemKind::Pyg,
            SystemKind::PaGraph,
            SystemKind::BglNoIsolation,
            SystemKind::Bgl,
        ]
    }

    /// The preset configuration for this system.
    pub fn config(self) -> SystemConfig {
        match self {
            SystemKind::Euler => SystemConfig {
                partitioner: PartitionerKind::Random,
                ordering: OrderingKind::RandomShuffle,
                cache: None,
                isolation: false,
                single_machine: false,
                // TensorFlow op dispatch + gRPC serialization on every hop;
                // unoptimized irregular GPU kernels (4x, and 10x on GAT).
                cost: CpuCostModel {
                    sample_ns_per_node: 12_000.0,
                    build_ns_per_edge: 40_000.0,
                    convert_ns_per_edge: 70_000.0,
                    gpu_factor: 4.0,
                    gat_gpu_factor: 10.0,
                    net_efficiency: 0.05,
                },
                po_sequences: 1,
            },
            SystemKind::Dgl => SystemConfig {
                partitioner: PartitionerKind::MetisLike,
                ordering: OrderingKind::RandomShuffle,
                cache: None,
                isolation: false,
                single_machine: false,
                // C++ sampling core but Python dataloader + pickle IPC.
                cost: CpuCostModel {
                    sample_ns_per_node: 4_000.0,
                    build_ns_per_edge: 20_000.0,
                    convert_ns_per_edge: 26_000.0,
                    gpu_factor: 1.0,
                    gat_gpu_factor: 1.0,
                    net_efficiency: 0.15,
                },
                po_sequences: 1,
            },
            SystemKind::Pyg => SystemConfig {
                partitioner: PartitionerKind::Random,
                ordering: OrderingKind::RandomShuffle,
                cache: None,
                isolation: false,
                single_machine: true,
                // Colocated store (no network) but a torch-scatter heavy
                // CPU path.
                cost: CpuCostModel {
                    sample_ns_per_node: 3_500.0,
                    build_ns_per_edge: 4_000.0,
                    convert_ns_per_edge: 22_000.0,
                    gpu_factor: 1.0,
                    gat_gpu_factor: 1.0,
                    net_efficiency: 0.30,
                },
                po_sequences: 1,
            },
            SystemKind::PaGraph => SystemConfig {
                partitioner: PartitionerKind::Bgl,
                ordering: OrderingKind::RandomShuffle,
                cache: Some(CacheConfig {
                    policy: PolicyKind::StaticDegree,
                    gpu_frac: 0.10,
                    cpu_frac: 0.0,
                    // PaGraph replicates the hot set per GPU — aggregate
                    // capacity does not grow with the GPU count.
                    sharded_across_gpus: false,
                }),
                isolation: false,
                single_machine: true,
                // DGL-based with a leaner feeding path.
                cost: CpuCostModel {
                    sample_ns_per_node: 2_000.0,
                    build_ns_per_edge: 2_800.0,
                    convert_ns_per_edge: 3_200.0,
                    gpu_factor: 1.0,
                    gat_gpu_factor: 1.0,
                    net_efficiency: 0.85,
                },
                po_sequences: 1,
            },
            SystemKind::BglNoIsolation => {
                let mut cfg = SystemKind::Bgl.config();
                cfg.isolation = false;
                cfg
            }
            SystemKind::Bgl => SystemConfig {
                partitioner: PartitionerKind::Bgl,
                ordering: OrderingKind::ProximityAware,
                cache: Some(CacheConfig {
                    policy: PolicyKind::Fifo,
                    gpu_frac: 0.10,
                    cpu_frac: 0.20,
                    sharded_across_gpus: true,
                }),
                isolation: true,
                single_machine: false,
                // Hand-written C++ data path, shared-memory IPC, dedicated
                // CUDA streams (§4).
                cost: CpuCostModel {
                    sample_ns_per_node: 1_500.0,
                    build_ns_per_edge: 2_200.0,
                    convert_ns_per_edge: 1_800.0,
                    gpu_factor: 1.0,
                    gat_gpu_factor: 1.0,
                    net_efficiency: 1.0,
                },
                po_sequences: 5,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        assert!(SystemKind::Bgl.config().cache.is_some());
        assert!(SystemKind::Bgl.config().isolation);
        assert!(!SystemKind::BglNoIsolation.config().isolation);
        assert!(SystemKind::Dgl.config().cache.is_none());
        assert!(SystemKind::Pyg.config().single_machine);
        assert!(SystemKind::PaGraph.config().single_machine);
        assert_eq!(
            SystemKind::PaGraph.config().cache.unwrap().policy,
            PolicyKind::StaticDegree
        );
    }

    #[test]
    fn bgl_has_the_cheapest_cpu_path() {
        let bgl = SystemKind::Bgl.config().cost;
        for other in [SystemKind::Euler, SystemKind::Dgl, SystemKind::Pyg] {
            let c = other.config().cost;
            assert!(c.sample_ns_per_node > bgl.sample_ns_per_node);
            assert!(c.build_ns_per_edge > bgl.build_ns_per_edge);
        }
    }

    #[test]
    fn oom_rule() {
        let pyg = SystemKind::Pyg.config();
        assert!(pyg.fits(100, 1000));
        assert!(!pyg.fits(2000, 1000));
        let bgl = SystemKind::Bgl.config();
        assert!(bgl.fits(usize::MAX / 2, 1000), "distributed systems never OOM here");
    }
}
