//! Shuffling-error estimation and the sequence-count auto-tuner (§3.2.2).
//!
//! The paper invokes the convergence theorem of Meng et al.
//! (Neurocomputing'19): if the total-variation distance ε between the label
//! distribution an ordering induces per mini-batch and the global training
//! label distribution satisfies `ε ≤ sqrt(b·M) / n` (b = batch size, M =
//! number of workers, n = training-set size), convergence is unaffected.
//! BGL starts from one BFS sequence and increases the sequence count until
//! the estimate drops below the bound.

use crate::ordering::{ProximityAware, TrainOrdering};
use bgl_graph::{Csr, NodeId};

/// Total-variation distance between two distributions: `½ Σ |p_i − q_i|`.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution arity mismatch");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Empirical label distribution of `nodes` over `num_classes`.
pub fn label_distribution(nodes: &[NodeId], labels: &[u16], num_classes: usize) -> Vec<f64> {
    let mut hist = vec![0.0f64; num_classes];
    for &v in nodes {
        hist[labels[v as usize] as usize] += 1.0;
    }
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        for h in hist.iter_mut() {
            *h /= total;
        }
    }
    hist
}

/// Mean per-batch TV distance from the global training label distribution —
/// the paper's shuffling-error ε estimated "as the frequency in per
/// mini-batch".
pub fn shuffling_error(
    order: &[NodeId],
    labels: &[u16],
    num_classes: usize,
    batch_size: usize,
) -> f64 {
    if order.is_empty() {
        return 0.0;
    }
    let global = label_distribution(order, labels, num_classes);
    let mut total = 0.0f64;
    let mut batches = 0usize;
    for chunk in order.chunks(batch_size.max(1)) {
        let dist = label_distribution(chunk, labels, num_classes);
        total += tv_distance(&dist, &global);
        batches += 1;
    }
    total / batches.max(1) as f64
}

/// The convergence bound `sqrt(b·M) / n`, with a floor that accounts for
/// finite-sample noise: even a perfectly uniform shuffle has per-batch TV
/// distance ~ sqrt(K/b), so the tuner compares orderings against the
/// *random baseline* rather than the raw theoretical bound when the bound
/// is unattainably small at laptop scale.
pub fn convergence_bound(batch_size: usize, num_workers: usize, train_size: usize) -> f64 {
    ((batch_size * num_workers) as f64).sqrt() / train_size.max(1) as f64
}

/// Result of the sequence-count search.
#[derive(Clone, Debug)]
pub struct TunerResult {
    pub num_sequences: usize,
    pub epsilon: f64,
    pub target: f64,
    /// ε of a random shuffle on the same data — the attainable floor.
    pub random_floor: f64,
}

/// Choose the number of BFS sequences: start from 1 and grow until the
/// shuffling error is within `slack` of the random-shuffle floor or below
/// the theoretical bound, whichever is laxer (paper: "use the minimum
/// number of sequences" that keeps convergence).
#[allow(clippy::too_many_arguments)]
pub fn choose_num_sequences(
    g: &Csr,
    train_nodes: &[NodeId],
    labels: &[u16],
    num_classes: usize,
    batch_size: usize,
    num_workers: usize,
    max_sequences: usize,
    seed: u64,
) -> TunerResult {
    let bound = convergence_bound(batch_size, num_workers, train_nodes.len());
    let random_floor = {
        let rs = crate::ordering::RandomShuffle::new(seed);
        let order = rs.epoch_order(g, train_nodes, 0);
        shuffling_error(&order, labels, num_classes, batch_size)
    };
    let target = bound.max(random_floor * 1.1);
    let mut last = f64::INFINITY;
    for s in 1..=max_sequences.max(1) {
        let po = ProximityAware::new(s, seed);
        let order = po.epoch_order(g, train_nodes, 0);
        last = shuffling_error(&order, labels, num_classes, batch_size);
        if last <= target {
            return TunerResult { num_sequences: s, epsilon: last, target, random_floor };
        }
    }
    TunerResult {
        num_sequences: max_sequences.max(1),
        epsilon: last,
        target,
        random_floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{BfsOrder, RandomShuffle};
    use bgl_graph::dataset::spatial_labels;
    use bgl_graph::generate::{self, CommunityConfig};

    fn setup() -> (Csr, Vec<NodeId>, Vec<u16>) {
        let g = generate::community_graph(
            CommunityConfig { n: 4000, communities: 20, intra: 8, inter: 1 },
            31,
        );
        let labels = spatial_labels(&g, 8, 5);
        let train: Vec<NodeId> = (0..4000).step_by(2).map(|v| v as NodeId).collect();
        (g, train, labels)
    }

    #[test]
    fn tv_distance_basics() {
        assert_eq!(tv_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((tv_distance(&[0.5, 0.5], &[1.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bfs_has_higher_error_than_random() {
        let (g, train, labels) = setup();
        let bfs = BfsOrder::new(2).epoch_order(&g, &train, 0);
        let rnd = RandomShuffle::new(2).epoch_order(&g, &train, 0);
        let eb = shuffling_error(&bfs, &labels, 8, 100);
        let er = shuffling_error(&rnd, &labels, 8, 100);
        assert!(
            eb > er * 1.5,
            "bfs error {:.4} should clearly exceed random {:.4}",
            eb,
            er
        );
    }

    #[test]
    fn more_sequences_reduce_error() {
        let (g, train, labels) = setup();
        let e1 = shuffling_error(
            &ProximityAware::new(1, 7).epoch_order(&g, &train, 0),
            &labels,
            8,
            100,
        );
        let e8 = shuffling_error(
            &ProximityAware::new(8, 7).epoch_order(&g, &train, 0),
            &labels,
            8,
            100,
        );
        assert!(
            e8 < e1,
            "8 sequences ({:.4}) should mix better than 1 ({:.4})",
            e8,
            e1
        );
    }

    #[test]
    fn tuner_returns_within_range_and_meets_target() {
        let (g, train, labels) = setup();
        let res = choose_num_sequences(&g, &train, &labels, 8, 100, 1, 16, 3);
        assert!((1..=16).contains(&res.num_sequences));
        // The chosen configuration's ε should be close to attainable floor.
        assert!(
            res.epsilon <= res.target || res.num_sequences == 16,
            "tuner stopped early with ε {:.4} > target {:.4}",
            res.epsilon,
            res.target
        );
    }

    #[test]
    fn bound_formula() {
        let b = convergence_bound(1000, 8, 200_000_000);
        assert!((b - (8000f64).sqrt() / 2e8).abs() < 1e-12);
    }

    #[test]
    fn empty_order_has_zero_error() {
        assert_eq!(shuffling_error(&[], &[], 4, 10), 0.0);
    }
}
