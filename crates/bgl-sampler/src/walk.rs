//! Alternative vertex-centric samplers (paper footnote 5): random-walk
//! sampling (PinSAGE-style) and layer-wise sampling (FastGCN-style).
//!
//! BGL's cache and partitioning apply to any vertex-centric sampler; these
//! two let the examples and ablation benches demonstrate that generality.

use crate::neighbor::{LayerBlock, MiniBatch};
use bgl_graph::{Csr, NodeId};
use rand::prelude::*;
use std::collections::HashMap;

/// Random-walk neighborhood sampler: for each seed, run `num_walks` walks
/// of length `walk_len` and keep the `top_t` most-visited nodes as the
/// seed's aggregation neighborhood (PinSAGE's importance pooling).
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkSampler {
    pub num_walks: usize,
    pub walk_len: usize,
    pub top_t: usize,
}

impl RandomWalkSampler {
    pub fn new(num_walks: usize, walk_len: usize, top_t: usize) -> Self {
        assert!(num_walks >= 1 && walk_len >= 1 && top_t >= 1);
        RandomWalkSampler { num_walks, walk_len, top_t }
    }

    /// Produce a single-block [`MiniBatch`] whose neighborhoods are the
    /// top visited nodes per seed.
    pub fn sample(&self, g: &Csr, seeds: &[NodeId], rng: &mut StdRng) -> MiniBatch {
        let mut src_nodes: Vec<NodeId> = seeds.to_vec();
        let mut local_of: HashMap<NodeId, u32> =
            seeds.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        let mut offsets = vec![0usize];
        let mut srcs = Vec::new();
        for &seed in seeds {
            let mut visits: HashMap<NodeId, usize> = HashMap::new();
            for _ in 0..self.num_walks {
                let mut cur = seed;
                for _ in 0..self.walk_len {
                    let nbrs = g.neighbors(cur);
                    if nbrs.is_empty() {
                        break;
                    }
                    cur = nbrs[rng.random_range(0..nbrs.len())];
                    *visits.entry(cur).or_insert(0) += 1;
                }
            }
            let mut ranked: Vec<(NodeId, usize)> = visits.into_iter().collect();
            ranked.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
            for &(v, _) in ranked.iter().take(self.top_t) {
                let next_id = src_nodes.len() as u32;
                let id = *local_of.entry(v).or_insert_with(|| {
                    src_nodes.push(v);
                    next_id
                });
                srcs.push(id);
            }
            offsets.push(srcs.len());
        }
        let block = LayerBlock { dst_nodes: seeds.to_vec(), src_nodes, offsets, srcs };
        MiniBatch { seeds: seeds.to_vec(), blocks: vec![block] }
    }
}

/// Layer-wise sampler (FastGCN-style): per hop, sample a fixed-size node
/// set for the whole layer (importance ∝ degree) instead of per-node
/// fanouts, then connect each dst to its sampled in-neighbors within the
/// chosen layer set.
#[derive(Clone, Debug)]
pub struct LayerWiseSampler {
    /// Per-hop layer sizes, seed-nearest first.
    pub layer_sizes: Vec<usize>,
}

impl LayerWiseSampler {
    pub fn new(layer_sizes: Vec<usize>) -> Self {
        assert!(!layer_sizes.is_empty());
        LayerWiseSampler { layer_sizes }
    }

    pub fn sample(&self, g: &Csr, seeds: &[NodeId], rng: &mut StdRng) -> MiniBatch {
        let mut blocks_rev = Vec::new();
        let mut dst: Vec<NodeId> = seeds.to_vec();
        for &layer_size in &self.layer_sizes {
            // Candidate pool: union of dst neighbors.
            let mut pool: Vec<NodeId> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for &v in &dst {
                for &u in g.neighbors(v) {
                    if seen.insert(u) {
                        pool.push(u);
                    }
                }
            }
            // Degree-proportional sampling without replacement (weighted
            // reservoir via exponential keys).
            let mut keyed: Vec<(f64, NodeId)> = pool
                .iter()
                .map(|&u| {
                    let w = (g.degree(u) as f64).max(1.0);
                    let r: f64 = rng.random::<f64>().max(1e-12);
                    (r.powf(1.0 / w), u)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let chosen: std::collections::HashSet<NodeId> =
                keyed.iter().take(layer_size).map(|&(_, u)| u).collect();

            let mut src_nodes: Vec<NodeId> = dst.clone();
            let mut local_of: HashMap<NodeId, u32> =
                dst.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
            let mut offsets = vec![0usize];
            let mut srcs = Vec::new();
            for &v in &dst {
                for &u in g.neighbors(v) {
                    if chosen.contains(&u) {
                        let next_id = src_nodes.len() as u32;
                        let id = *local_of.entry(u).or_insert_with(|| {
                            src_nodes.push(u);
                            next_id
                        });
                        srcs.push(id);
                    }
                }
                offsets.push(srcs.len());
            }
            let block = LayerBlock { dst_nodes: dst.clone(), src_nodes, offsets, srcs };
            dst = block.src_nodes.clone();
            blocks_rev.push(block);
        }
        blocks_rev.reverse();
        MiniBatch { seeds: seeds.to_vec(), blocks: blocks_rev }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_graph::generate;

    #[test]
    fn random_walk_neighborhoods_bounded() {
        let g = generate::barabasi_albert(500, 4, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let s = RandomWalkSampler::new(10, 3, 5);
        let mb = s.sample(&g, &[1, 2, 3], &mut rng);
        let b = &mb.blocks[0];
        for d in 0..b.num_dst() {
            assert!(b.neighbors_of(d).len() <= 5);
        }
        assert_eq!(&b.src_nodes[..3], &[1, 2, 3]);
    }

    #[test]
    fn random_walk_on_isolated_node() {
        let g = bgl_graph::GraphBuilder::new(3).build();
        let mut rng = StdRng::seed_from_u64(2);
        let s = RandomWalkSampler::new(5, 3, 4);
        let mb = s.sample(&g, &[0], &mut rng);
        assert_eq!(mb.blocks[0].neighbors_of(0).len(), 0);
    }

    #[test]
    fn layer_wise_respects_layer_budget() {
        let g = generate::barabasi_albert(500, 4, 9);
        let mut rng = StdRng::seed_from_u64(3);
        let s = LayerWiseSampler::new(vec![20, 10]);
        let mb = s.sample(&g, &[0, 1, 2, 3], &mut rng);
        assert_eq!(mb.blocks.len(), 2);
        // src set of each block ≤ dst + layer budget.
        let inner = &mb.blocks[1]; // seed-nearest (layer_sizes[0] = 20)
        assert!(inner.num_src() <= inner.num_dst() + 20);
    }

    #[test]
    fn layer_wise_edges_exist() {
        let g = generate::barabasi_albert(300, 3, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let s = LayerWiseSampler::new(vec![30]);
        let mb = s.sample(&g, &[5, 6], &mut rng);
        let b = &mb.blocks[0];
        for d in 0..b.num_dst() {
            for &sl in b.neighbors_of(d) {
                assert!(g.has_edge(b.dst_nodes[d], b.src_nodes[sl as usize]));
            }
        }
    }

    #[test]
    fn walk_sampler_prefers_close_nodes() {
        // On a path graph, walks from an end reach only nearby nodes.
        let mut builder = bgl_graph::GraphBuilder::new(50);
        for i in 0..49u32 {
            builder.add_undirected(i, i + 1);
        }
        let g = builder.build();
        let mut rng = StdRng::seed_from_u64(7);
        let s = RandomWalkSampler::new(20, 4, 8);
        let mb = s.sample(&g, &[0], &mut rng);
        let b = &mb.blocks[0];
        for &sl in b.neighbors_of(0) {
            assert!(b.src_nodes[sl as usize] <= 4, "walk escaped radius");
        }
    }
}
