//! Fanout-based neighbor sampling (GraphSAGE-style).
//!
//! For a batch of seed nodes and per-hop fanouts `{f1, …, fL}`, sample `f1`
//! neighbors of each seed, `f2` neighbors of each of those, and so on —
//! producing one [`LayerBlock`] per hop. The blocks are the message-flow
//! graphs the GNN consumes: layer l aggregates from `src_nodes` into
//! `dst_nodes`.

use bgl_graph::{Csr, NodeId};
use rand::prelude::*;
use std::collections::HashMap;

/// One bipartite message-flow block.
///
/// Aggregation for local destination `d` reads
/// `srcs[offsets[d]..offsets[d+1]]`, which are *local indices into
/// `src_nodes`*. The first `dst_nodes.len()` entries of `src_nodes` are the
/// destinations themselves (self features are always available, as GCN /
/// GraphSAGE / GAT all need them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerBlock {
    /// Global IDs of the destination nodes (the smaller side).
    pub dst_nodes: Vec<NodeId>,
    /// Global IDs of the source nodes; `src_nodes[..dst_nodes.len()] ==
    /// dst_nodes`.
    pub src_nodes: Vec<NodeId>,
    /// CSR offsets into `srcs`, one entry per destination plus one.
    pub offsets: Vec<usize>,
    /// Sampled in-neighbors as local indices into `src_nodes`.
    pub srcs: Vec<u32>,
}

impl LayerBlock {
    /// Number of destination nodes.
    pub fn num_dst(&self) -> usize {
        self.dst_nodes.len()
    }

    /// Number of source nodes.
    pub fn num_src(&self) -> usize {
        self.src_nodes.len()
    }

    /// Number of sampled edges.
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// The sampled neighbor slice (local src indices) of local dst `d`.
    pub fn neighbors_of(&self, d: usize) -> &[u32] {
        &self.srcs[self.offsets[d]..self.offsets[d + 1]]
    }
}

/// A sampled mini-batch: `blocks[0]` is the input-side block (its
/// `src_nodes` need features), `blocks.last()` produces the seed outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MiniBatch {
    /// The training nodes this batch was built from.
    pub seeds: Vec<NodeId>,
    /// Message-flow blocks ordered input → output.
    pub blocks: Vec<LayerBlock>,
}

impl MiniBatch {
    /// Global IDs whose features must be fetched — the input frontier.
    pub fn input_nodes(&self) -> &[NodeId] {
        &self.blocks[0].src_nodes
    }

    /// Total distinct nodes touched by the batch (the "roughly 400,000
    /// nodes" per batch in the paper's running example).
    pub fn num_input_nodes(&self) -> usize {
        self.blocks[0].src_nodes.len()
    }

    /// Total sampled edges across all blocks — the subgraph-structure
    /// payload shipped from samplers to workers.
    pub fn num_edges(&self) -> usize {
        self.blocks.iter().map(|b| b.num_edges()).sum()
    }

    /// Serialized structure size in bytes (IDs + offsets), the quantity the
    /// paper calls "subgraph structure" traffic (≈ 5 MB per batch).
    pub fn structure_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.dst_nodes.len() * 4
                    + b.src_nodes.len() * 4
                    + b.offsets.len() * 8
                    + b.srcs.len() * 4
            })
            .sum()
    }

    /// Structural fingerprint (FNV-1a over seeds and every block's arrays).
    /// Two mini-batches digest equal iff they are the same sampled subgraph
    /// — what the executor's differential test compares across the threaded
    /// and serial paths without shipping whole batches around.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for &s in &self.seeds {
            eat(s as u64);
        }
        for b in &self.blocks {
            eat(b.dst_nodes.len() as u64);
            for &v in &b.dst_nodes {
                eat(v as u64);
            }
            for &v in &b.src_nodes {
                eat(v as u64);
            }
            for &o in &b.offsets {
                eat(o as u64);
            }
            for &s in &b.srcs {
                eat(s as u64);
            }
        }
        h
    }
}

/// Telemetry handles for a sampler: frontier-size histogram, edge counter,
/// and per-hop span timing. Default is inert.
#[derive(Clone, Debug, Default)]
struct SamplerMetrics {
    obs: bgl_obs::Registry,
    frontier: bgl_obs::Histogram,
    edges: bgl_obs::Counter,
    batches: bgl_obs::Counter,
}

/// Multi-hop neighbor sampler with per-hop fanouts.
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    /// `fanouts[0]` applies to the hop nearest the seeds. The paper's
    /// default is `{15, 10, 5}`.
    pub fanouts: Vec<usize>,
    metrics: SamplerMetrics,
}

impl NeighborSampler {
    /// Sampler with the given fanouts (outermost hop last).
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        NeighborSampler { fanouts, metrics: SamplerMetrics::default() }
    }

    /// The paper's evaluation configuration: 3 hops, fanout {15, 10, 5}.
    pub fn paper_default() -> Self {
        NeighborSampler::new(vec![15, 10, 5])
    }

    /// Record frontier sizes (`sampler.frontier` histogram), sampled edges
    /// (`sampler.edges`), and per-hop spans into `reg`.
    pub fn with_metrics(mut self, reg: &bgl_obs::Registry) -> Self {
        self.metrics = SamplerMetrics {
            obs: reg.clone(),
            frontier: reg.histogram("sampler.frontier"),
            edges: reg.counter("sampler.edges"),
            batches: reg.counter("sampler.batches"),
        };
        self
    }

    /// Number of hops.
    pub fn num_hops(&self) -> usize {
        self.fanouts.len()
    }

    /// Sample the blocks for `seeds`. Sampling is without replacement when
    /// the degree allows (degree ≤ fanout takes all neighbors, matching
    /// DGL's semantics).
    pub fn sample(&self, g: &Csr, seeds: &[NodeId], rng: &mut StdRng) -> MiniBatch {
        let obs = &self.metrics.obs;
        let span = obs.span("sampler.sample");
        let mut blocks_rev: Vec<LayerBlock> = Vec::with_capacity(self.fanouts.len());
        let mut dst: Vec<NodeId> = seeds.to_vec();
        for (hop, &fanout) in self.fanouts.iter().enumerate() {
            let hop_span = if obs.is_enabled() {
                obs.span_named(format!("sampler.hop{hop}"))
            } else {
                obs.span("sampler.hop")
            };
            let block = sample_one_layer(g, &dst, fanout, rng);
            hop_span.end();
            self.metrics.frontier.record(block.num_src() as u64);
            self.metrics.edges.add(block.num_edges() as u64);
            dst = block.src_nodes.clone();
            blocks_rev.push(block);
        }
        blocks_rev.reverse();
        self.metrics.batches.incr();
        span.end();
        MiniBatch { seeds: seeds.to_vec(), blocks: blocks_rev }
    }

    /// Expansion upper bound: the largest possible input frontier for a
    /// batch of `b` seeds — the neighbor-explosion number from §2.2.
    pub fn max_expansion(&self, b: usize) -> usize {
        let mut total = b;
        let mut layer = b;
        for &f in &self.fanouts {
            layer *= f;
            total += layer;
        }
        total
    }
}

/// Sample one hop: for each dst, pick up to `fanout` distinct neighbors.
fn sample_one_layer(
    g: &Csr,
    dst: &[NodeId],
    fanout: usize,
    rng: &mut StdRng,
) -> LayerBlock {
    let mut src_nodes: Vec<NodeId> = dst.to_vec();
    let mut local_of: HashMap<NodeId, u32> = HashMap::with_capacity(dst.len() * 2);
    for (i, &v) in dst.iter().enumerate() {
        local_of.insert(v, i as u32);
    }
    let mut offsets = Vec::with_capacity(dst.len() + 1);
    offsets.push(0usize);
    let mut srcs: Vec<u32> = Vec::with_capacity(dst.len() * fanout);
    let mut scratch: Vec<NodeId> = Vec::with_capacity(fanout);
    for &v in dst {
        let nbrs = g.neighbors(v);
        scratch.clear();
        if nbrs.len() <= fanout {
            scratch.extend_from_slice(nbrs);
        } else {
            // Floyd's algorithm for `fanout` distinct indices.
            let mut chosen = std::collections::HashSet::with_capacity(fanout);
            for j in (nbrs.len() - fanout)..nbrs.len() {
                let t = rng.random_range(0..=j);
                let pick = if chosen.insert(t) { t } else { j };
                if pick != t {
                    chosen.insert(pick);
                }
                scratch.push(nbrs[pick]);
            }
        }
        for &u in &scratch {
            let next_id = src_nodes.len() as u32;
            let id = *local_of.entry(u).or_insert_with(|| {
                src_nodes.push(u);
                next_id
            });
            srcs.push(id);
        }
        offsets.push(srcs.len());
    }
    LayerBlock { dst_nodes: dst.to_vec(), src_nodes, offsets, srcs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_graph::generate;
    use bgl_graph::GraphBuilder;

    fn star(center_deg: usize) -> Csr {
        let mut b = GraphBuilder::new(center_deg + 1);
        for i in 1..=center_deg {
            b.add_undirected(0, i as NodeId);
        }
        b.build()
    }

    #[test]
    fn fanout_bounds_sampled_neighbors() {
        let g = star(50);
        let mut rng = StdRng::seed_from_u64(1);
        let s = NeighborSampler::new(vec![5]);
        let mb = s.sample(&g, &[0], &mut rng);
        assert_eq!(mb.blocks.len(), 1);
        let b = &mb.blocks[0];
        assert_eq!(b.num_dst(), 1);
        assert_eq!(b.neighbors_of(0).len(), 5);
        // No duplicate neighbors.
        let mut seen: Vec<u32> = b.neighbors_of(0).to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn low_degree_takes_all_neighbors() {
        let g = star(3);
        let mut rng = StdRng::seed_from_u64(2);
        let s = NeighborSampler::new(vec![10]);
        let mb = s.sample(&g, &[0], &mut rng);
        assert_eq!(mb.blocks[0].neighbors_of(0).len(), 3);
    }

    #[test]
    fn src_prefix_is_dst() {
        let g = generate::barabasi_albert(200, 3, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let s = NeighborSampler::new(vec![4, 3]);
        let mb = s.sample(&g, &[5, 9, 13], &mut rng);
        for b in &mb.blocks {
            assert_eq!(&b.src_nodes[..b.num_dst()], &b.dst_nodes[..]);
        }
        // Chaining: outer block's dst == inner block's src.
        assert_eq!(mb.blocks[0].dst_nodes, mb.blocks[1].src_nodes);
    }

    #[test]
    fn sampled_edges_exist_in_graph() {
        let g = generate::barabasi_albert(300, 4, 7);
        let mut rng = StdRng::seed_from_u64(5);
        let s = NeighborSampler::paper_default();
        let mb = s.sample(&g, &[1, 2, 3], &mut rng);
        for b in &mb.blocks {
            for d in 0..b.num_dst() {
                let dst_global = b.dst_nodes[d];
                for &sl in b.neighbors_of(d) {
                    let src_global = b.src_nodes[sl as usize];
                    assert!(
                        g.has_edge(dst_global, src_global),
                        "sampled edge {}->{} not in graph",
                        dst_global,
                        src_global
                    );
                }
            }
        }
    }

    #[test]
    fn seeds_flow_to_last_block() {
        let g = generate::barabasi_albert(200, 3, 9);
        let mut rng = StdRng::seed_from_u64(6);
        let s = NeighborSampler::new(vec![3, 3]);
        let seeds = vec![7, 11];
        let mb = s.sample(&g, &seeds, &mut rng);
        assert_eq!(mb.blocks.last().unwrap().dst_nodes, seeds);
        assert_eq!(mb.seeds, seeds);
    }

    #[test]
    fn expansion_bound_holds() {
        let g = generate::barabasi_albert(2000, 8, 2);
        let mut rng = StdRng::seed_from_u64(8);
        let s = NeighborSampler::new(vec![5, 5]);
        let seeds: Vec<NodeId> = (0..20).collect();
        let mb = s.sample(&g, &seeds, &mut rng);
        assert!(mb.num_input_nodes() <= s.max_expansion(20));
    }

    #[test]
    fn isolated_seed_yields_empty_neighborhood() {
        let mut b = GraphBuilder::new(5);
        b.add_undirected(1, 2);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let s = NeighborSampler::new(vec![5]);
        let mb = s.sample(&g, &[0], &mut rng);
        assert_eq!(mb.blocks[0].neighbors_of(0).len(), 0);
        assert_eq!(mb.num_input_nodes(), 1);
    }

    #[test]
    fn metrics_record_frontier_and_hop_spans() {
        let g = generate::barabasi_albert(300, 4, 7);
        let reg = bgl_obs::Registry::enabled();
        let mut rng = StdRng::seed_from_u64(5);
        let s = NeighborSampler::new(vec![4, 3]).with_metrics(&reg);
        let mb = s.sample(&g, &[1, 2, 3], &mut rng);
        let hists: std::collections::BTreeMap<_, _> = reg.histograms().into_iter().collect();
        let frontier = &hists["sampler.frontier"];
        assert_eq!(frontier.count, 2, "one frontier sample per hop");
        assert_eq!(
            frontier.max,
            mb.num_input_nodes() as u64,
            "largest frontier is the input side"
        );
        let counters: std::collections::BTreeMap<_, _> = reg.counters().into_iter().collect();
        assert_eq!(counters["sampler.edges"], mb.num_edges() as u64);
        assert_eq!(counters["sampler.batches"], 1);
        let names: Vec<String> = reg.spans().iter().map(|s| s.name.to_string()).collect();
        assert!(names.contains(&"sampler.sample".to_string()));
        assert!(names.contains(&"sampler.hop0".to_string()));
        assert!(names.contains(&"sampler.hop1".to_string()));
    }

    #[test]
    fn structure_bytes_positive_and_consistent() {
        let g = generate::barabasi_albert(100, 3, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let s = NeighborSampler::new(vec![3]);
        let mb = s.sample(&g, &[0, 1], &mut rng);
        assert!(mb.structure_bytes() > 0);
        assert_eq!(
            mb.num_edges(),
            mb.blocks.iter().map(|b| b.srcs.len()).sum::<usize>()
        );
    }
}
