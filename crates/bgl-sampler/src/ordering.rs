//! Training-node orderings (paper §3.2.2).
//!
//! The order in which training nodes form mini-batches decides the temporal
//! locality the feature cache can exploit:
//!
//! * [`RandomShuffle`] — what DGL/PyG/Euler do. i.i.d.-friendly, zero
//!   locality.
//! * [`BfsOrder`] — one full BFS traversal. Maximal locality, but batches
//!   inherit the label skew of graph regions, which breaks SGD's i.i.d.
//!   assumption and hurts convergence.
//! * [`ProximityAware`] — the paper's co-design: several BFS sequences from
//!   random roots, each randomly rotated, interleaved round-robin. Locality
//!   close to BFS, label mixing close to random.
//!
//! All orderings emit one epoch at a time: a permutation of the training
//! nodes, reshuffled (re-rooted / re-shifted) per epoch.

use bgl_graph::traversal::bfs_full_order;
use bgl_graph::{Csr, NodeId};
use rand::prelude::*;

/// An epoch-order generator over training nodes.
pub trait TrainOrdering {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// A permutation of `train_nodes` for epoch `epoch`.
    fn epoch_order(&self, g: &Csr, train_nodes: &[NodeId], epoch: usize) -> Vec<NodeId>;

    /// Convenience: split an epoch order into batches of `batch_size`
    /// (last batch may be short).
    fn epoch_batches(
        &self,
        g: &Csr,
        train_nodes: &[NodeId],
        batch_size: usize,
        epoch: usize,
    ) -> Vec<Vec<NodeId>> {
        self.epoch_order(g, train_nodes, epoch)
            .chunks(batch_size.max(1))
            .map(|c| c.to_vec())
            .collect()
    }
}

/// Uniform random shuffle per epoch — the i.i.d. baseline.
#[derive(Clone, Copy, Debug)]
pub struct RandomShuffle {
    pub seed: u64,
}

impl RandomShuffle {
    pub fn new(seed: u64) -> Self {
        RandomShuffle { seed }
    }
}

impl TrainOrdering for RandomShuffle {
    fn name(&self) -> &'static str {
        "random-shuffle"
    }

    fn epoch_order(&self, _g: &Csr, train_nodes: &[NodeId], epoch: usize) -> Vec<NodeId> {
        let mut order = train_nodes.to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9E37));
        order.shuffle(&mut rng);
        order
    }
}

/// One full-graph BFS from a random root, filtered to training nodes —
/// maximal temporal locality, worst label mixing.
#[derive(Clone, Copy, Debug)]
pub struct BfsOrder {
    pub seed: u64,
}

impl BfsOrder {
    pub fn new(seed: u64) -> Self {
        BfsOrder { seed }
    }
}

impl TrainOrdering for BfsOrder {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn epoch_order(&self, g: &Csr, train_nodes: &[NodeId], epoch: usize) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x51));
        let root = if g.num_nodes() == 0 {
            0
        } else {
            rng.random_range(0..g.num_nodes()) as NodeId
        };
        let is_train = train_mask(g.num_nodes(), train_nodes);
        bfs_full_order(g, root)
            .into_iter()
            .filter(|&v| is_train[v as usize])
            .collect()
    }
}

/// The paper's proximity-aware ordering.
#[derive(Clone, Copy, Debug)]
pub struct ProximityAware {
    /// Number of parallel BFS sequences (paper: chosen by the shuffling-
    /// error tuner, e.g. 5).
    pub num_sequences: usize,
    /// Length of the consecutive run taken from one sequence before moving
    /// to the next. In the paper's Figure 7 each batch draws
    /// `batch_size / num_sequences` consecutive nodes from every sequence;
    /// use [`ProximityAware::for_batch`] to get exactly that.
    pub chunk: usize,
    pub seed: u64,
}

impl ProximityAware {
    pub fn new(num_sequences: usize, seed: u64) -> Self {
        assert!(num_sequences >= 1);
        ProximityAware { num_sequences, chunk: 32, seed }
    }

    /// Configure the interleave so each mini-batch of `batch_size` is
    /// composed of one run from each sequence, matching the paper's
    /// batch-formation diagram (Fig. 7).
    pub fn for_batch(num_sequences: usize, batch_size: usize, seed: u64) -> Self {
        assert!(num_sequences >= 1);
        let chunk = (batch_size / num_sequences).max(1);
        ProximityAware { num_sequences, chunk, seed }
    }
}

impl TrainOrdering for ProximityAware {
    fn name(&self) -> &'static str {
        "proximity-aware"
    }

    fn epoch_order(&self, g: &Csr, train_nodes: &[NodeId], epoch: usize) -> Vec<NodeId> {
        if train_nodes.is_empty() {
            return Vec::new();
        }
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0xA5A5));
        let is_train = train_mask(g.num_nodes(), train_nodes);

        // ① Several BFS sequences from random roots, filtered to train
        // nodes. Each sequence is a complete order over all training nodes.
        let mut sequences: Vec<Vec<NodeId>> = (0..self.num_sequences)
            .map(|_| {
                let root = rng.random_range(0..g.num_nodes()) as NodeId;
                bfs_full_order(g, root)
                    .into_iter()
                    .filter(|&v| is_train[v as usize])
                    .collect::<Vec<_>>()
            })
            .collect();

        // ② Random shift: rotate each sequence by a random offset. This
        // randomizes where each epoch starts in the traversal and keeps the
        // small-components tail (which BFS appends last) from always
        // landing in the final batches.
        for seq in sequences.iter_mut() {
            let shift = rng.random_range(0..seq.len().max(1));
            seq.rotate_left(shift);
        }

        // ③ Round-robin interleave in runs of `chunk` consecutive nodes per
        // sequence (Fig. 7), skipping nodes already emitted this epoch, so
        // the result is a permutation of the training set that keeps
        // BFS-adjacent nodes adjacent within each run.
        let n = train_nodes.len();
        let mut emitted = vec![false; g.num_nodes()];
        let mut cursors = vec![0usize; self.num_sequences];
        let mut order = Vec::with_capacity(n);
        let mut s = 0usize;
        while order.len() < n {
            let seq = &sequences[s % self.num_sequences];
            let cur = &mut cursors[s % self.num_sequences];
            let mut taken = 0usize;
            while taken < self.chunk.max(1) && *cur < seq.len() {
                let v = seq[*cur];
                *cur += 1;
                if !emitted[v as usize] {
                    emitted[v as usize] = true;
                    order.push(v);
                    taken += 1;
                }
            }
            s += 1;
            // All cursors exhausted -> done (order must already hold all n).
            if s.is_multiple_of(self.num_sequences)
                && cursors
                    .iter()
                    .zip(&sequences)
                    .all(|(&c, seq)| c >= seq.len())
            {
                break;
            }
        }
        order
    }
}

fn train_mask(n: usize, train_nodes: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &t in train_nodes {
        mask[t as usize] = true;
    }
    mask
}

/// Locality proxy: mean BFS-hop adjacency of consecutive order entries,
/// measured as the fraction of consecutive pairs within `k` hops. Higher is
/// more cache-friendly. Used by tests and the cache experiments.
pub fn consecutive_locality(g: &Csr, order: &[NodeId], k: usize, sample: usize) -> f64 {
    use bgl_graph::khop_neighborhood;
    if order.len() < 2 {
        return 1.0;
    }
    let stride = (order.len() / sample.max(1)).max(1);
    let mut close = 0usize;
    let mut total = 0usize;
    let mut i = 0;
    while i + 1 < order.len() {
        let hood = khop_neighborhood(g, order[i], k);
        if hood.contains(&order[i + 1]) {
            close += 1;
        }
        total += 1;
        i += stride;
    }
    close as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_graph::generate::{self, CommunityConfig};

    fn setup() -> (Csr, Vec<NodeId>) {
        let g = generate::community_graph(
            CommunityConfig { n: 2000, communities: 10, intra: 8, inter: 1 },
            21,
        );
        let train: Vec<NodeId> = (0..2000).step_by(4).map(|v| v as NodeId).collect();
        (g, train)
    }

    fn assert_permutation(order: &[NodeId], train: &[NodeId]) {
        assert_eq!(order.len(), train.len());
        let mut a = order.to_vec();
        let mut b = train.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn all_orderings_are_permutations() {
        let (g, train) = setup();
        for ord in [
            &RandomShuffle::new(1) as &dyn TrainOrdering,
            &BfsOrder::new(1),
            &ProximityAware::new(5, 1),
        ] {
            for epoch in 0..3 {
                let order = ord.epoch_order(&g, &train, epoch);
                assert_permutation(&order, &train);
            }
        }
    }

    #[test]
    fn epochs_differ() {
        let (g, train) = setup();
        for ord in [
            &RandomShuffle::new(1) as &dyn TrainOrdering,
            &ProximityAware::new(5, 1),
        ] {
            let a = ord.epoch_order(&g, &train, 0);
            let b = ord.epoch_order(&g, &train, 1);
            assert_ne!(a, b, "{} repeated epoch order", ord.name());
        }
    }

    #[test]
    fn proximity_beats_random_on_locality() {
        let (g, train) = setup();
        let po = ProximityAware::new(4, 3).epoch_order(&g, &train, 0);
        let rs = RandomShuffle::new(3).epoch_order(&g, &train, 0);
        let lp = consecutive_locality(&g, &po, 2, 200);
        let lr = consecutive_locality(&g, &rs, 2, 200);
        assert!(
            lp > lr * 1.5,
            "proximity locality {:.3} should beat random {:.3}",
            lp,
            lr
        );
    }

    #[test]
    fn bfs_has_highest_locality() {
        let (g, train) = setup();
        let bfs = BfsOrder::new(3).epoch_order(&g, &train, 0);
        let po = ProximityAware::new(4, 3).epoch_order(&g, &train, 0);
        let lb = consecutive_locality(&g, &bfs, 2, 200);
        let lp = consecutive_locality(&g, &po, 2, 200);
        assert!(lb >= lp * 0.9, "bfs {:.3} vs po {:.3}", lb, lp);
    }

    #[test]
    fn batches_cover_epoch() {
        let (g, train) = setup();
        let batches = ProximityAware::new(3, 7).epoch_batches(&g, &train, 64, 0);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, train.len());
        assert!(batches[..batches.len() - 1].iter().all(|b| b.len() == 64));
    }

    #[test]
    fn single_sequence_proximity_is_shifted_bfs() {
        let (g, train) = setup();
        let order = ProximityAware::new(1, 5).epoch_order(&g, &train, 0);
        assert_permutation(&order, &train);
        let loc = consecutive_locality(&g, &order, 2, 200);
        assert!(loc > 0.3, "single-seq locality {:.3} too low", loc);
    }

    #[test]
    fn empty_train_set() {
        let (g, _) = setup();
        let order = ProximityAware::new(3, 1).epoch_order(&g, &[], 0);
        assert!(order.is_empty());
    }
}
