//! # bgl-sampler — subgraph samplers and training-node orderings
//!
//! The first stage of sampling-based GNN training (paper §2.1): given a
//! batch of training nodes, sample their multi-hop neighborhoods into
//! message-flow blocks; and — BGL's algorithmic contribution (§3.2.2) —
//! decide the *order* in which training nodes form batches.
//!
//! * [`NeighborSampler`] — fanout-per-hop neighbor sampling (the paper's
//!   configuration: batch 1000, fanout {15, 10, 5}), producing
//!   [`MiniBatch`]es of layered [`LayerBlock`]s that `bgl-gnn` consumes
//!   directly;
//! * [`walk`] — random-walk and layer-wise samplers (footnote 5 of the
//!   paper: BGL applies to these vertex-centric samplers too);
//! * [`ordering`] — training-node orderings: [`ordering::RandomShuffle`]
//!   (what DGL does), [`ordering::BfsOrder`] (maximal locality, breaks
//!   i.i.d.), and [`ordering::ProximityAware`] — the paper's co-design:
//!   multiple BFS sequences, round-robin interleave, random shift;
//! * [`shuffle_error`] — the total-variation shuffling-error estimator and
//!   the `ε ≤ sqrt(bM)/n` sequence-count auto-tuner from §3.2.2.

pub mod neighbor;
pub mod ordering;
pub mod shuffle_error;
pub mod walk;

pub use neighbor::{LayerBlock, MiniBatch, NeighborSampler};
pub use ordering::{BfsOrder, ProximityAware, RandomShuffle, TrainOrdering};
